package sched

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
)

// IndexScheduler is the index-based early scheduling engine, combining
// two techniques from the literature on parallel state-machine
// replication schedulers:
//
//   - Early scheduling (Alchieri, Dotti, Pedone): the mapping from
//     command classes to worker sets is compiled once from the C-Dep
//     (cdep.Compiled.Route), so admission performs no conflict
//     reasoning — it just routes.
//   - Index-based scheduling (Wu et al.): a hash-sharded per-key
//     conflict index maps each key with live commands to the worker
//     currently serving it, so a keyed command enqueues in O(1) behind
//     exactly the commands it conflicts with — never a scan over the
//     live set.
//
// Commands flow straight from the delivery thread into per-worker
// ingress queues; there is no scheduler thread to saturate a core (the
// bottleneck the paper measures for sP-SMR in Figures 3, 5 and 7).
// The execution pipeline is batch-first:
//
//   - SubmitBatch admits one decided batch at a time: every touched
//     key shard is locked once per burst and every target worker's
//     ingress deque is pushed once per burst, instead of once per
//     command.
//   - Same-key write chains land on one worker's FIFO while any of
//     them is live, so they execute in admission order. Same-key
//     READ-ONLY commands (cdep.Route.ReadOnly) instead join a per-key
//     reader set: each reader is routed independently (least-loaded)
//     and waits only for the completion gate of the last admitted
//     writer, while the next writer waits for the reader set admitted
//     since the previous writer to drain — the same reader concurrency
//     the scan engine's live-set tracking provides, without a
//     scheduler thread.
//   - Keys with no live commands are (re)assigned to the least-loaded
//     worker (ties break to the lowest worker id), which is what
//     balances skewed workloads.
//   - An idle worker steals a bounded batch of non-keyed work from the
//     longest ingress queue. Keyed chains never migrate (the per-key
//     FIFO is the conflict order) and nothing is taken at or past a
//     pending barrier token, so stealing cannot reorder dependent
//     commands.
//   - Global (barrier) commands are enqueued on every worker's queue;
//     workers rendezvous at the token, the compiled set's minimum
//     member executes alone, then releases the rest — exactly the
//     paper's "wait for the worker threads to finish their ongoing
//     work" semantics.
//   - MULTI-KEY commands (cdep.RouteMultiKey) are a partial barrier
//     over exactly the workers owning the command's keys: admission
//     places the command as the new last writer of every key (in
//     sorted-key order) and enqueues ONE rendezvous token on every
//     distinct owner queue — a 2PL-style lock acquisition where the
//     per-key FIFOs are the lock queues. The lowest-id owner executes
//     once every owner reaches its token and every sealed reader set
//     of the touched keys has drained; the other owners park until
//     released. Deadlock-freedom: admission is serialized and a token
//     is fully enqueued (after flushing the buffered burst) before
//     admission continues, so tokens appear on ALL queues in one
//     global admission order, every wait edge (FIFO predecessor,
//     writer gate, sealed reader group, rendezvous arrival) points to
//     an earlier-admitted command, and the wait graph stays acyclic.
//
// The ingress deques are unbounded, like the scan engine's ready list:
// backpressure comes from the closed-loop clients and the ordering
// layer, and bounded hand-off channels would deadlock batched
// admission against reader-set gates (a blocked producer could hold
// back the very writer a queue head is waiting on). Submit and
// SubmitBatch keep the scan engine's contract: one producer, or
// producers that are externally serialized.
type IndexScheduler struct {
	cfg     Config
	queues  []*ingress
	keyIdx  []keyShard
	clients []clientShard

	stealBatch int
	stealSig   chan struct{}

	admitCPU *bench.RoleMeter

	// Admission scratch, reused across calls (producers are externally
	// serialized, so no locking). buckets groups one burst's keyed
	// commands by key shard; touched lists the non-empty buckets;
	// perWorker/workersHit bucket the placed burst by target queue.
	single     [1]*command.Request
	buckets    [][]*inode // len keyShardCount
	touched    []int
	free       []*inode
	perWorker  [][]*inode
	workersHit []int
	pendingLen []int

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// ingress is one worker's unbounded admission deque. A mutex-guarded
// slice replaces a bounded channel so that (a) a whole burst enqueues
// under one lock acquisition and (b) an idle worker can steal from the
// middle of another worker's backlog — neither is expressible over a
// channel.
type ingress struct {
	mu    sync.Mutex
	items []*inode
	// load counts queued + executing commands; admission's least-loaded
	// placement reads it without the lock.
	load atomic.Int64
	// freeLoad counts the queued non-keyed, non-barrier commands — the
	// stealable ones. Thieves pick their victim by it, so an all-keyed
	// backlog costs them one atomic load, never a scan under the
	// victim's lock.
	freeLoad atomic.Int64
	// raided counts commands recently stolen FROM this queue — the
	// steal-aware placement feedback. A queue that keeps getting raided
	// is draining slower than its peers, so leastLoaded treats the
	// counter as extra load and stops preferring the queue as the owner
	// of idle keys; imbalance is then fixed at admission instead of
	// being re-stolen every burst. The counter halves each time the
	// owner finds its queue empty, so the penalty fades once the
	// backlog clears.
	raided atomic.Int64
	// wake is a 1-buffered doorbell: pushed-to while the owner may be
	// parked.
	wake chan struct{}
}

func (q *ingress) pushBatch(ns []*inode) {
	free := 0
	for _, n := range ns {
		if !n.keyed && n.bar == nil {
			free++
		}
	}
	if free > 0 {
		q.freeLoad.Add(int64(free))
	}
	q.load.Add(int64(len(ns)))
	q.mu.Lock()
	q.items = append(q.items, ns...)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop removes the queue head, or returns nil when the queue is empty.
func (q *ingress) pop() *inode {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return nil
	}
	n := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil // release the drained backing array
	}
	q.mu.Unlock()
	return n
}

// inode is one admitted command (or one worker's view of a barrier or
// multi-key rendezvous token).
type inode struct {
	req    *command.Request
	marker func()        // quiesce marker closure (barrier tokens only)
	bar    *indexBarrier // non-nil for barrier tokens
	mk     *mkToken      // non-nil for multi-key rendezvous tokens
	keyed  bool
	reader bool
	key    uint64
	mkeys  []uint64 // multi-key readers: canonical key set

	set    command.Gamma // compiled worker set (admission scratch)
	worker int           // target queue (admission scratch)

	waitW  *gate          // readers: completion gate of the last admitted writer
	waitWs []*gate        // multi-key readers: one writer gate per live key
	waitR  *readerGroup   // writers: reader set admitted since the previous writer
	gate   *gate          // writers: closed on completion
	grp    *readerGroup   // readers: group to leave on completion
	grps   []*readerGroup // multi-key readers: group per key, parallel to mkeys
}

// mkToken coordinates one multi-key command across the workers owning
// its keys. The SAME inode is enqueued on every owner queue; gate is
// pre-allocated (readers of any touched key may latch onto it from
// under different key shards, so lazy allocation would race).
type mkToken struct {
	keys     []uint64       // canonical (sorted, deduped) key set
	owners   []int          // distinct owner workers, ascending
	executor int            // owners[0]: the lowest-id owner executes
	arrive   chan struct{}  // owners signal "drained up to the token"
	release  chan struct{}  // closed by the executor after running
	waitRs   []*readerGroup // sealed reader sets of the touched keys
}

// gate is a writer's completion latch; readers admitted while the
// writer is live wait on it before executing. It is allocated lazily —
// only when a reader actually arrives behind a live writer — so
// write-only chains pay nothing for it.
type gate struct{ ch chan struct{} }

// readerGroup counts the live readers admitted between two writers of
// one key. The next writer seals the group at admission (allocating
// done); the last member to complete after sealing closes done.
type readerGroup struct {
	n    int
	done chan struct{} // non-nil once sealed by a writer
}

// indexBarrier coordinates one global command across the workers.
type indexBarrier struct {
	executor int           // worker that runs the command (min of the route's set)
	arrive   chan struct{} // workers signal "drained up to the token"
	release  chan struct{} // closed by the executor after running
}

// keyShard is one shard of the per-key conflict index. Keyed by
// cdep.KeyFunc output, hash-sharded so the admission thread and the
// workers' completions rarely contend; batched admission locks each
// touched shard once per burst.
type keyShard struct {
	mu   sync.Mutex
	live map[uint64]*keyEntry
}

// keyEntry tracks one key with live (queued or executing) commands:
// the worker owning the write chain, live counts, the last admitted
// writer, and the reader set admitted since.
type keyEntry struct {
	worker     int // FIFO owning the write chain (valid while writers > 0)
	writers    int // live writers
	total      int // live writers + readers (entry is deleted at zero)
	lastWriter *inode
	readers    *readerGroup
}

// clientShard is one shard of the at-most-once state: the response
// cache plus the in-flight duplicate filter (shared across workers, so
// a retransmission routed anywhere is answered or suppressed).
type clientShard struct {
	mu       sync.Mutex
	table    *dedup.Table
	inflight map[requestID]struct{}
}

const (
	keyShardCount    = 128
	clientShardCount = 64
	// defaultStealBatch caps the commands an idle worker takes per
	// steal; small enough that a mistaken steal cannot unbalance the
	// victim, large enough to amortise the victim-lock acquisition.
	defaultStealBatch = 8
)

// StartIndex launches the index engine: the per-worker queues and the
// worker pool, but no scheduler thread.
func StartIndex(cfg Config) (*IndexScheduler, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sched: %d workers", cfg.Workers)
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = defaultStealBatch
	}
	if cfg.Compiled == nil {
		return nil, fmt.Errorf("sched: Compiled is required")
	}
	if cfg.Service == nil && cfg.Exec == nil {
		return nil, fmt.Errorf("sched: Service or Exec is required")
	}
	s := &IndexScheduler{
		cfg:        cfg,
		queues:     make([]*ingress, cfg.Workers),
		keyIdx:     make([]keyShard, keyShardCount),
		clients:    make([]clientShard, clientShardCount),
		stealBatch: cfg.StealBatch,
		stealSig:   make(chan struct{}, 1),
		buckets:    make([][]*inode, keyShardCount),
		perWorker:  make([][]*inode, cfg.Workers),
		pendingLen: make([]int, cfg.Workers),
		stop:       make(chan struct{}),
	}
	for i := range s.queues {
		s.queues[i] = &ingress{wake: make(chan struct{}, 1)}
	}
	for i := range s.keyIdx {
		s.keyIdx[i].live = make(map[uint64]*keyEntry)
	}
	for i := range s.clients {
		s.clients[i].table = dedup.NewTable(cfg.DedupWindow)
		s.clients[i].inflight = make(map[requestID]struct{})
	}
	// Admission runs on the caller (the delivery pump); metering it as
	// "scheduler" keeps the CPU panels comparable with the scan engine —
	// and shows how little of a core O(1) routing needs.
	s.admitCPU = cfg.CPU.Role("scheduler")
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.work(w)
	}
	return s, nil
}

// Submit routes one command to its worker queue in O(1). It reports
// false once the engine is stopping. Commands are ordered per conflict
// chain in Submit order.
func (s *IndexScheduler) Submit(req *command.Request) bool {
	s.single[0] = req
	return s.SubmitBatch(s.single[:])
}

// SubmitBatch admits one decided batch. The at-most-once filter runs
// per command, but each key shard is locked once per burst and each
// target worker's ingress deque is pushed once per burst — the lock
// amortisation that makes the pipeline batch-first. A barrier command
// flushes the work buffered before it, so barrier tokens partition
// every queue in admission order. The engine does not retain the
// slice. It reports false once the engine is stopping.
func (s *IndexScheduler) SubmitBatch(reqs []*command.Request) bool {
	select {
	case <-s.stop:
		return false
	default:
	}
	stopBusy := s.admitCPU.Busy()
	defer stopBusy()
	for _, req := range reqs {
		if s.dropDuplicate(req) {
			continue
		}
		route := s.cfg.Compiled.Route(req.Cmd)
		kind := route.Kind
		var key uint64
		var mkeys []uint64
		switch kind {
		case cdep.RouteKeyed:
			if k, ok := s.cfg.Compiled.Key(req.Cmd, req.Input); ok {
				key = k
			} else {
				// Keyless invocation of a keyed command may touch any
				// object: serialize it like a global command.
				kind = cdep.RouteBarrier
			}
		case cdep.RouteMultiKey:
			if ks, ok := s.cfg.Compiled.KeySet(req.Cmd, req.Input); ok {
				mkeys = ks
			} else {
				// Undeterminable key set: synchronous mode.
				kind = cdep.RouteBarrier
			}
		}
		switch kind {
		case cdep.RouteBarrier:
			s.flush()
			s.admitBarrier(req, route)
		case cdep.RouteMultiKey:
			// Flush first so every earlier command of this burst is
			// already on its queue: the token (or reader) then lands
			// behind all of them, keeping one global admission order
			// across all queues.
			s.flush()
			if route.ReadOnly && !s.cfg.NoReaderSets {
				s.admitMultiKeyRead(req, route, mkeys)
			} else {
				s.admitMultiKey(req, route, mkeys)
			}
		case cdep.RouteKeyed:
			s.bufferKeyed(&inode{
				req: req, keyed: true, key: key, set: route.Workers,
				reader: route.ReadOnly && !s.cfg.NoReaderSets,
			})
		default:
			s.free = append(s.free, &inode{req: req, set: route.Workers})
		}
	}
	s.flush()
	return true
}

// SubmitMarker admits a quiesce marker: a barrier token carrying a
// closure instead of a command. The buffered burst is flushed first,
// so the token partitions every queue in admission order — fn runs
// once every worker has drained up to its token, alone, before
// anything admitted later starts. It reports false once the engine is
// stopping.
func (s *IndexScheduler) SubmitMarker(fn func()) bool {
	if fn == nil {
		return true
	}
	select {
	case <-s.stop:
		return false
	default:
	}
	stopBusy := s.admitCPU.Busy()
	defer stopBusy()
	s.flush()
	n := &inode{
		marker: fn,
		bar: &indexBarrier{
			executor: 0,
			arrive:   make(chan struct{}, len(s.queues)),
			release:  make(chan struct{}),
		},
	}
	token := []*inode{n}
	for _, q := range s.queues {
		q.pushBatch(token)
	}
	return true
}

// dropDuplicate applies the at-most-once filter: completed
// retransmissions are answered from the cache, duplicates whose
// original is still live are dropped (the same metastable
// retransmission collapse the scan engine defends against).
func (s *IndexScheduler) dropDuplicate(req *command.Request) bool {
	if s.cfg.Exec != nil {
		// External execution hook: the at-most-once layer moves to the
		// hook's owner (see Config.Exec).
		return false
	}
	cs := s.clientShard(req.Client)
	id := requestID{client: req.Client, seq: req.Seq}
	cs.mu.Lock()
	if out, dup := cs.table.Lookup(req.Client, req.Seq); dup {
		cs.mu.Unlock()
		s.respond(req, out)
		return true
	}
	if _, live := cs.inflight[id]; live {
		cs.mu.Unlock()
		return true
	}
	cs.inflight[id] = struct{}{}
	cs.mu.Unlock()
	return false
}

// bufferKeyed groups this burst's keyed commands by key shard so flush
// can lock each shard once. Same-key commands share a shard, so their
// admission order is preserved within the shard's bucket.
func (s *IndexScheduler) bufferKeyed(n *inode) {
	si := s.keyShardIndex(n.key)
	if len(s.buckets[si]) == 0 {
		s.touched = append(s.touched, int(si))
	}
	s.buckets[si] = append(s.buckets[si], n)
}

// flush places the buffered burst: every touched key shard is locked
// once, free commands are spread least-loaded, and every target
// worker's ingress is pushed once.
func (s *IndexScheduler) flush() {
	if len(s.touched) == 0 && len(s.free) == 0 {
		return
	}
	for _, si := range s.touched {
		ks := &s.keyIdx[si]
		ks.mu.Lock()
		for _, n := range s.buckets[si] {
			s.placeKeyedLocked(ks, n)
			s.pendingLen[n.worker]++
		}
		ks.mu.Unlock()
	}
	for _, n := range s.free {
		n.worker = s.leastLoaded(n.set)
		s.pendingLen[n.worker]++
	}
	for _, si := range s.touched {
		for _, n := range s.buckets[si] {
			s.addToWorker(n)
		}
		s.buckets[si] = s.buckets[si][:0]
	}
	s.touched = s.touched[:0]
	for _, n := range s.free {
		s.addToWorker(n)
	}
	s.free = s.free[:0]
	for _, w := range s.workersHit {
		ns := s.perWorker[w]
		s.pendingLen[w] = 0
		s.queues[w].pushBatch(ns)
		s.perWorker[w] = ns[:0]
		if !s.cfg.NoSteal && s.queues[w].freeLoad.Load() >= int64(s.stealBatch) {
			// A stealable backlog built up: ring the doorbell so a
			// parked worker rechecks the victim scan.
			select {
			case s.stealSig <- struct{}{}:
			default:
			}
		}
	}
	s.workersHit = s.workersHit[:0]
}

// addToWorker appends a placed command to its target queue's burst
// bucket, tracking which queues this burst touches.
func (s *IndexScheduler) addToWorker(n *inode) {
	if len(s.perWorker[n.worker]) == 0 {
		s.workersHit = append(s.workersHit, n.worker)
	}
	s.perWorker[n.worker] = append(s.perWorker[n.worker], n)
}

// placeKeyedLocked assigns one keyed command its target worker and its
// dependency gates. The caller holds the key's shard lock.
//
// Writers chain on one worker's FIFO (admission order = execution
// order) and wait for the reader set admitted since the previous
// writer. Readers are routed independently and wait only for the last
// admitted writer's completion gate. Every wait edge points to an
// earlier-admitted command and every queue is FIFO in admission order,
// so the wait graph is acyclic — no deadlock.
func (s *IndexScheduler) placeKeyedLocked(ks *keyShard, n *inode) {
	e := ks.live[n.key]
	if e == nil {
		e = &keyEntry{}
		ks.live[n.key] = e
	}
	e.total++
	if n.reader {
		if w := e.lastWriter; w != nil {
			// Rendezvous with the live write chain: latch onto the last
			// writer's completion gate, allocating it on first use.
			if w.gate == nil {
				w.gate = &gate{ch: make(chan struct{})}
			}
			n.waitW = w.gate
		}
		if e.readers == nil {
			e.readers = &readerGroup{}
		}
		e.readers.n++
		n.grp = e.readers
		// Readers fan out to their own routed workers instead of the
		// write chain's FIFO — this is what recovers hot-key read
		// concurrency.
		n.worker = s.leastLoaded(n.set)
		return
	}
	switch {
	case e.writers > 0:
		// Live write chain: append behind it (same worker FIFO
		// preserves admission order for the key).
		n.worker = e.worker
	default:
		// Idle write chain: a placement pin wins (§IV-D load-balancing
		// hint), else the least-loaded member of the compiled worker
		// set.
		if pw, ok := s.cfg.Compiled.PlacedWorker(n.key); ok && pw < len(s.queues) {
			n.worker = pw
		} else {
			n.worker = s.leastLoaded(n.set)
		}
	}
	e.worker = n.worker
	e.writers++
	if g := e.readers; g != nil && g.n > 0 {
		g.done = make(chan struct{}) // seal: the writer waits for the drain
		n.waitR = g
	}
	e.readers = nil
	e.lastWriter = n
}

// Close stops the engine and waits for the workers to exit.
func (s *IndexScheduler) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// admitBarrier enqueues one barrier token on every worker's queue. The
// token is fully enqueued before admission continues, so every command
// admitted earlier precedes it on its queue and every later command
// follows it — the rendezvous cannot deadlock. The compiled worker
// set's minimum member executes.
func (s *IndexScheduler) admitBarrier(req *command.Request, route cdep.Route) {
	executor := route.Workers.Min()
	if executor < 0 || executor >= len(s.queues) {
		executor = 0
	}
	n := &inode{
		req: req,
		bar: &indexBarrier{
			executor: executor,
			arrive:   make(chan struct{}, len(s.queues)),
			release:  make(chan struct{}),
		},
	}
	token := []*inode{n}
	for _, q := range s.queues {
		q.pushBatch(token)
	}
}

// admitMultiKey admits one multi-key command: a 2PL-style acquisition
// of every touched key, in the canonical sorted-key order, followed by
// one rendezvous token on every distinct owner queue. The caller has
// flushed the buffered burst, so everything admitted earlier is already
// enqueued and the token partitions each owner queue in admission
// order. keys is sorted and deduplicated (cdep.Compiled.KeySet).
func (s *IndexScheduler) admitMultiKey(req *command.Request, route cdep.Route, keys []uint64) {
	n := &inode{
		req:   req,
		keyed: true, // never stealable, never counted as free
		mk: &mkToken{
			keys:    keys,
			release: make(chan struct{}),
		},
		// Readers of any touched key latch onto this gate from under
		// their own key's shard lock; pre-allocating it keeps that
		// race-free (two shards cannot both lazily allocate).
		gate: &gate{ch: make(chan struct{})},
	}
	mk := n.mk
	for _, key := range keys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		e := ks.live[key]
		if e == nil {
			e = &keyEntry{}
			ks.live[key] = e
		}
		e.total++
		if e.writers > 0 {
			// Live write chain: the token joins it on its worker, so
			// the chain's FIFO order is preserved for this key.
			// (worker already set in e.worker)
		} else if pw, ok := s.cfg.Compiled.PlacedWorker(key); ok && pw < len(s.queues) {
			e.worker = pw
		} else {
			e.worker = s.leastLoaded(route.Workers)
		}
		e.writers++
		if g := e.readers; g != nil && g.n > 0 {
			g.done = make(chan struct{}) // seal: the executor waits for the drain
			mk.waitRs = append(mk.waitRs, g)
		}
		e.readers = nil
		e.lastWriter = n
		owner := e.worker
		ks.mu.Unlock()

		found := false
		for _, w := range mk.owners {
			if w == owner {
				found = true
				break
			}
		}
		if !found {
			mk.owners = append(mk.owners, owner)
			s.pendingLen[owner]++ // later keys' leastLoaded sees this token
		}
	}
	sort.Ints(mk.owners)
	mk.executor = mk.owners[0]
	mk.arrive = make(chan struct{}, len(mk.owners))
	token := []*inode{n}
	for _, w := range mk.owners {
		s.pendingLen[w] = 0
		s.queues[w].pushBatch(token)
	}
}

// admitMultiKeyRead admits one read-only multi-key command (a snapshot
// read over a key set): instead of the owner rendezvous it behaves like
// a reader of EVERY touched key — it latches onto each key's last
// writer's completion gate and joins each key's reader group, then runs
// on its own least-loaded worker. No owner parks: the next writer of
// any touched key waits for the sealed reader groups exactly as it
// waits for single-key readers. Every wait edge (the keys' last
// writers) points to an earlier-admitted command, so the wait graph
// stays acyclic. The caller has flushed the buffered burst; keys is
// sorted and deduplicated (cdep.Compiled.KeySet).
func (s *IndexScheduler) admitMultiKeyRead(req *command.Request, route cdep.Route, keys []uint64) {
	n := &inode{
		req:    req,
		keyed:  true, // never stealable, never counted as free
		reader: true,
		mkeys:  keys,
		grps:   make([]*readerGroup, len(keys)),
	}
	for i, key := range keys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		e := ks.live[key]
		if e == nil {
			e = &keyEntry{}
			ks.live[key] = e
		}
		e.total++
		if w := e.lastWriter; w != nil {
			// Latch onto the live write chain's completion, allocating
			// the gate on first use (multi-key writer tokens pre-allocate
			// theirs; see admitMultiKey).
			if w.gate == nil {
				w.gate = &gate{ch: make(chan struct{})}
			}
			n.waitWs = append(n.waitWs, w.gate)
		}
		if e.readers == nil {
			e.readers = &readerGroup{}
		}
		e.readers.n++
		n.grps[i] = e.readers
		ks.mu.Unlock()
	}
	n.worker = s.leastLoaded(route.Workers)
	s.queues[n.worker].pushBatch([]*inode{n})
}

// leastLoaded returns the member of the compiled worker set with the
// shortest ingress backlog (queued + executing, plus this burst's
// not-yet-pushed placements, plus the decaying stolen-from penalty —
// a chronically raided queue is draining slower than its load suggests,
// so it should not be preferred as the owner of idle keys). Ties break
// deterministically to the lowest worker id (the scan is ascending and
// strictly improving). A set with no member in this engine's worker
// range falls back to all workers.
func (s *IndexScheduler) leastLoaded(set command.Gamma) int {
	best, bestLen := -1, int64(1<<62)
	for w := range s.queues {
		if set != 0 && !set.Has(w) {
			continue
		}
		q := s.queues[w]
		l := q.load.Load() + int64(s.pendingLen[w]) + q.raided.Load()
		if l < bestLen {
			best, bestLen = w, l
		}
	}
	if best < 0 {
		return s.leastLoaded(0)
	}
	return best
}

// work is one pool worker draining its own ingress queue, stealing
// from the longest queue when its own runs dry.
func (s *IndexScheduler) work(w int) {
	defer s.wg.Done()
	q := s.queues[w]
	cpu := s.cfg.CPU.Role("worker")
	stealSig := s.stealSig
	if s.cfg.NoSteal {
		stealSig = nil
	}
	for {
		n := q.pop()
		if n == nil {
			// The backlog cleared: decay the steal-aware placement
			// penalty so a once-raided queue becomes attractive again.
			if r := q.raided.Load(); r > 0 {
				q.raided.Store(r / 2)
			}
			if batch := s.steal(w); len(batch) > 0 {
				for _, m := range batch {
					if !s.execute(m, cpu) {
						return
					}
					q.load.Add(-1)
				}
				continue
			}
			select {
			case <-q.wake:
				continue
			case <-stealSig:
				continue
			case <-s.stop:
				return
			}
		}
		switch {
		case n.bar != nil:
			if !s.rendezvous(w, n, cpu.Busy) {
				return
			}
		case n.mk != nil:
			if !s.rendezvousMulti(w, n, cpu.Busy) {
				return
			}
		default:
			if !n.keyed {
				q.freeLoad.Add(-1)
			}
			if !s.execute(n, cpu) {
				return
			}
		}
		q.load.Add(-1)
	}
}

// steal takes up to stealBatch non-keyed commands from the front of
// the ingress queue with the most stealable work. Keyed chains never
// migrate (their FIFO is the conflict order) and the scan stops at the
// first barrier token, so a stolen command was admitted after every
// executed barrier and before every pending one — executing it on the
// thief is indistinguishable from the victim executing it. The scan is
// bounded, and queues with no stealable work are skipped on an atomic
// read alone.
func (s *IndexScheduler) steal(w int) []*inode {
	if s.cfg.NoSteal {
		return nil
	}
	victim, most := -1, int64(0)
	for i := range s.queues {
		if i == w {
			continue
		}
		if l := s.queues[i].freeLoad.Load(); l > most {
			victim, most = i, l
		}
	}
	if victim < 0 {
		return nil
	}
	q := s.queues[victim]
	limit := 8 * s.stealBatch // bound the time under the victim's lock
	var batch []*inode
	q.mu.Lock()
	if len(q.items) < limit {
		limit = len(q.items)
	}
	orig := len(q.items)
	kept := q.items[:0]
	for i, n := range q.items[:limit] {
		if n.bar != nil || n.mk != nil {
			// Stop at rendezvous tokens (full or multi-key barriers):
			// nothing at or past one may jump it.
			limit = i // copy the rest wholesale below
			break
		}
		if !n.keyed && len(batch) < s.stealBatch {
			batch = append(batch, n)
			continue
		}
		kept = append(kept, n)
	}
	kept = append(kept, q.items[limit:]...)
	for i := len(kept); i < orig; i++ {
		q.items[i] = nil
	}
	q.items = kept
	q.mu.Unlock()
	if len(batch) > 0 {
		q.load.Add(-int64(len(batch)))
		left := q.freeLoad.Add(-int64(len(batch)))
		// Steal-aware placement feedback: record that this queue needed
		// raiding, so admission stops preferring it for idle keys.
		q.raided.Add(int64(len(batch)))
		s.queues[w].load.Add(int64(len(batch)))
		if left > 0 {
			// More stealable backlog remains: cascade the doorbell so
			// another parked worker joins in.
			select {
			case s.stealSig <- struct{}{}:
			default:
			}
		}
	}
	return batch
}

// execute runs one non-barrier command after waiting out its gates:
// the last writer's completion for readers, the sealed reader set for
// writers. Gate owners are always earlier-admitted commands, so the
// waits terminate. It reports false when the engine is stopping.
func (s *IndexScheduler) execute(n *inode, cpu *bench.RoleMeter) bool {
	if n.waitW != nil {
		select {
		case <-n.waitW.ch:
		case <-s.stop:
			return false
		}
	}
	for _, g := range n.waitWs {
		select {
		case <-g.ch:
		case <-s.stop:
			return false
		}
	}
	if n.waitR != nil {
		select {
		case <-n.waitR.done:
		case <-s.stop:
			return false
		}
	}
	stopBusy := cpu.Busy()
	output := s.exec(n.req)
	s.respond(n.req, output)
	stopBusy()
	s.complete(n, output)
	return true
}

// rendezvous runs one barrier token: the executor (the minimum of the
// compiled worker set) waits for every other worker to drain up to its
// token, executes the command alone, then releases them. It reports
// false when the engine is stopping.
func (s *IndexScheduler) rendezvous(w int, n *inode, busy func() func()) bool {
	if w != n.bar.executor {
		select {
		case n.bar.arrive <- struct{}{}:
		case <-s.stop:
			return false
		}
		select {
		case <-n.bar.release:
			return true
		case <-s.stop:
			return false
		}
	}
	for i := 1; i < len(s.queues); i++ {
		select {
		case <-n.bar.arrive:
		case <-s.stop:
			return false
		}
	}
	stopBusy := busy()
	if n.marker != nil {
		// Quiesce marker: every worker is parked at its token, so the
		// closure observes the service at one deterministic log
		// position. No response, no at-most-once record.
		n.marker()
		stopBusy()
		close(n.bar.release)
		return true
	}
	output := s.exec(n.req)
	s.respond(n.req, output)
	stopBusy()
	s.complete(n, output)
	close(n.bar.release)
	return true
}

// rendezvousMulti runs one multi-key token: the executor (the lowest-id
// owner) waits for the other owners to drain up to their tokens and for
// the sealed reader sets of the touched keys, executes the command
// once, then releases the parked owners. Per-key FIFO order guarantees
// every earlier writer of every touched key completed before its owner
// reached the token, so the rendezvous is exactly a 2PL lock point over
// the key set. It reports false when the engine is stopping.
func (s *IndexScheduler) rendezvousMulti(w int, n *inode, busy func() func()) bool {
	mk := n.mk
	if w != mk.executor {
		select {
		case mk.arrive <- struct{}{}:
		case <-s.stop:
			return false
		}
		select {
		case <-mk.release:
			return true
		case <-s.stop:
			return false
		}
	}
	for i := 1; i < len(mk.owners); i++ {
		select {
		case <-mk.arrive:
		case <-s.stop:
			return false
		}
	}
	for _, g := range mk.waitRs {
		select {
		case <-g.done:
		case <-s.stop:
			return false
		}
	}
	stopBusy := busy()
	output := s.exec(n.req)
	s.respond(n.req, output)
	stopBusy()
	s.completeMulti(n, output)
	close(mk.release)
	return true
}

// recordDone records a completed request in the at-most-once layer
// (skipped entirely under an external execution hook).
func (s *IndexScheduler) recordDone(req *command.Request, output []byte) {
	if s.cfg.Exec != nil {
		return
	}
	cs := s.clientShard(req.Client)
	cs.mu.Lock()
	cs.table.Record(req.Client, req.Seq, output)
	delete(cs.inflight, requestID{client: req.Client, seq: req.Seq})
	cs.mu.Unlock()
}

// completeMulti releases a multi-key command: at-most-once recording,
// per-key conflict-index cleanup (in the same sorted-key order as
// admission), and the writer-gate close readers of any touched key may
// be parked on.
func (s *IndexScheduler) completeMulti(n *inode, output []byte) {
	s.recordDone(n.req, output)
	for _, key := range n.mk.keys {
		ks := s.keyShard(key)
		ks.mu.Lock()
		if e := ks.live[key]; e != nil {
			e.total--
			e.writers--
			if e.lastWriter == n {
				e.lastWriter = nil
			}
			if e.total <= 0 {
				delete(ks.live, key)
			}
		}
		ks.mu.Unlock()
	}
	// The gate was pre-allocated at admission; any reader that latched
	// on did so under its key's shard lock, before the lastWriter
	// clearing above.
	close(n.gate.ch)
}

// complete records the response for at-most-once, closes the command's
// writer gate (if a reader latched one on), and releases it from the
// conflict index.
func (s *IndexScheduler) complete(n *inode, output []byte) {
	s.recordDone(n.req, output)
	if !n.keyed {
		return
	}
	if n.mkeys != nil {
		// Multi-key reader: leave every touched key's reader group, in
		// the same sorted-key order as admission.
		for i, key := range n.mkeys {
			ks := s.keyShard(key)
			ks.mu.Lock()
			if e := ks.live[key]; e != nil {
				e.total--
				if g := n.grps[i]; g != nil {
					g.n--
					if g.done != nil && g.n == 0 {
						close(g.done)
					}
				}
				if e.total <= 0 {
					delete(ks.live, key)
				}
			}
			ks.mu.Unlock()
		}
		return
	}
	ks := s.keyShard(n.key)
	ks.mu.Lock()
	if e := ks.live[n.key]; e != nil {
		e.total--
		if n.reader {
			if g := n.grp; g != nil {
				g.n--
				if g.done != nil && g.n == 0 {
					close(g.done)
				}
			}
		} else {
			e.writers--
			if e.lastWriter == n {
				e.lastWriter = nil
			}
		}
		if e.total <= 0 {
			delete(ks.live, n.key)
		}
	}
	// n.gate is written by reader admissions under this shard's lock;
	// read it under the same lock, close it after.
	var g *gate
	if !n.reader {
		g = n.gate
	}
	ks.mu.Unlock()
	if g != nil {
		close(g.ch)
	}
}

func (s *IndexScheduler) respond(req *command.Request, output []byte) {
	Respond(s.cfg.Transport, req, output)
}

// exec runs one request through the configured execution hook.
func (s *IndexScheduler) exec(req *command.Request) []byte {
	if s.cfg.Exec != nil {
		return s.cfg.Exec(req)
	}
	return s.cfg.Service.Execute(req.Cmd, req.Input)
}

func (s *IndexScheduler) keyShard(key uint64) *keyShard {
	return &s.keyIdx[s.keyShardIndex(key)]
}

func (s *IndexScheduler) keyShardIndex(key uint64) uint64 {
	return mix64(key) % keyShardCount
}

func (s *IndexScheduler) clientShard(client uint64) *clientShard {
	return &s.clients[mix64(client)%clientShardCount]
}

// mix64 is a splitmix64-style finalizer spreading low-entropy ids
// across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

var _ Engine = (*IndexScheduler)(nil)
var _ Engine = (*Scheduler)(nil)
