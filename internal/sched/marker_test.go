package sched

// Quiesce markers (Engine.SubmitMarker): on both engines the marker
// closure must run with every earlier-admitted command completed and
// nothing admitted after it started — the rendezvous the checkpoint
// subsystem snapshots on.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/command"
)

// countSvc counts executions; the marker reads the count at its
// quiesce point.
type countSvc struct {
	executed atomic.Int64
	slow     time.Duration
}

func (s *countSvc) Execute(cmd command.ID, input []byte) []byte {
	if s.slow > 0 {
		time.Sleep(s.slow)
	}
	s.executed.Add(1)
	return []byte{0}
}

func TestSubmitMarkerQuiesces(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			svc := &countSvc{slow: time.Millisecond}
			e, _ := startEngine(t, kind, 4, svc, Tuning{})

			const perPhase = 24
			mkBatch := func(base uint64) []*command.Request {
				reqs := make([]*command.Request, 0, perPhase)
				for i := uint64(0); i < perPhase; i++ {
					cmd := cmdWrite
					if i%3 == 0 {
						cmd = cmdPing // non-keyed: fans out / steals
					}
					reqs = append(reqs, &command.Request{
						Client: 1, Seq: base + i, Cmd: cmd, Input: input(i%5, base+i),
					})
				}
				return reqs
			}

			var (
				mu   sync.Mutex
				seen []int64
				wg   sync.WaitGroup
			)
			wg.Add(3)
			for phase := 0; phase < 3; phase++ {
				if !e.SubmitBatch(mkBatch(uint64(1 + phase*perPhase))) {
					t.Fatal("SubmitBatch refused")
				}
				if !e.SubmitMarker(func() {
					defer wg.Done()
					mu.Lock()
					seen = append(seen, svc.executed.Load())
					mu.Unlock()
				}) {
					t.Fatal("SubmitMarker refused")
				}
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("markers did not run")
			}
			// Marker i must observe exactly the i+1 phases admitted
			// before it — every earlier command done, no later one
			// started.
			mu.Lock()
			defer mu.Unlock()
			if len(seen) != 3 {
				t.Fatalf("%d markers ran, want 3", len(seen))
			}
			for i, got := range seen {
				if want := int64((i + 1) * perPhase); got != want {
					t.Fatalf("marker %d observed %d executed commands, want %d (markers must quiesce the engine)", i, got, want)
				}
			}
		})
	}
}

// A nil marker is a no-op and markers interleave with per-command
// Submit on the index engine (which orders across admission paths).
func TestSubmitMarkerNilAndSingle(t *testing.T) {
	svc := &countSvc{}
	e, _ := startEngine(t, KindIndex, 2, svc, Tuning{})
	if !e.SubmitMarker(nil) {
		t.Fatal("nil marker refused")
	}
	for i := uint64(1); i <= 8; i++ {
		if !e.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(i, i)}) {
			t.Fatal("Submit refused")
		}
	}
	ran := make(chan int64, 1)
	if !e.SubmitMarker(func() { ran <- svc.executed.Load() }) {
		t.Fatal("SubmitMarker refused")
	}
	select {
	case got := <-ran:
		if got != 8 {
			t.Fatalf("marker observed %d executions, want 8", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("marker did not run")
	}
}
