package sched

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// input3 builds a two-key transfer input: [k1][k2][seq].
func input3(k1, k2, seq uint64) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf, k1)
	binary.LittleEndian.PutUint64(buf[8:], k2)
	binary.LittleEndian.PutUint64(buf[16:], seq)
	return buf
}

// seqOf reads a request's sequence tag regardless of command shape
// (writes/reads/pings carry it at [8:16], transfers and snapshot reads
// at [16:24]).
func seqOf(cmd command.ID, input []byte) uint64 {
	if cmd == cmdXfer || cmd == cmdMRead {
		return binary.LittleEndian.Uint64(input[16:24])
	}
	return binary.LittleEndian.Uint64(input[8:16])
}

// traceSetService records execution order and verifies that no two
// conflicting invocations (by cdep key-SET intersection) ever overlap.
// Unlike traceService it retains full inputs, so multi-key commands
// participate in the conflict check.
type traceSetService struct {
	mu        sync.Mutex
	order     []uint64
	inFlight  map[uint64][]byte     // seq → input
	cmds      map[uint64]command.ID // seq → command
	conflicts *cdep.Compiled
	violation atomic.Bool
	slow      time.Duration
}

func newTraceSetService(c *cdep.Compiled, slow time.Duration) *traceSetService {
	return &traceSetService{
		inFlight:  make(map[uint64][]byte),
		cmds:      make(map[uint64]command.ID),
		conflicts: c,
		slow:      slow,
	}
}

func (s *traceSetService) Execute(cmd command.ID, input []byte) []byte {
	seq := seqOf(cmd, input)
	s.mu.Lock()
	for otherSeq, otherInput := range s.inFlight {
		if s.conflicts.Conflicts(cmd, input, s.cmds[otherSeq], otherInput) {
			s.violation.Store(true)
		}
	}
	s.inFlight[seq] = input
	s.cmds[seq] = cmd
	s.order = append(s.order, seq)
	s.mu.Unlock()

	if s.slow > 0 {
		time.Sleep(s.slow)
	}

	s.mu.Lock()
	delete(s.inFlight, seq)
	delete(s.cmds, seq)
	s.mu.Unlock()
	return []byte{0}
}

func (s *traceSetService) executed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

func waitSetExecuted(t *testing.T, svc *traceSetService, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if svc.executed() >= n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out: executed %d of %d", svc.executed(), n)
}

// A transfer between two keys with live write chains on different
// workers must wait for both chains (owner rendezvous) and later
// commands on either key must wait for it — with no conflicting
// overlap anywhere.
func TestIndexMultiKeyRendezvous(t *testing.T) {
	compiled, err := cdep.Compile(spec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := newTraceSetService(compiled, 2*time.Millisecond)
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	e, err := StartIndex(Config{Workers: 4, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = e.Close() })

	// Two distinct-key write chains (almost surely on two workers),
	// then the transfer bridging them, then writes behind it.
	var reqs []*command.Request
	for i := uint64(1); i <= 6; i++ {
		k := uint64(1)
		if i%2 == 0 {
			k = 2
		}
		reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(k, i)})
	}
	reqs = append(reqs, &command.Request{Client: 1, Seq: 100, Cmd: cmdXfer, Input: input3(1, 2, 100)})
	reqs = append(reqs,
		&command.Request{Client: 1, Seq: 201, Cmd: cmdWrite, Input: input(1, 201)},
		&command.Request{Client: 1, Seq: 202, Cmd: cmdWrite, Input: input(2, 202)},
	)
	if !e.SubmitBatch(reqs) {
		t.Fatal("SubmitBatch failed")
	}
	waitSetExecuted(t, svc, len(reqs))
	if svc.violation.Load() {
		t.Fatal("conflicting commands overlapped")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	pos := make(map[uint64]int, len(svc.order))
	for i, seq := range svc.order {
		pos[seq] = i
	}
	for seq := uint64(1); seq <= 6; seq++ {
		if pos[seq] > pos[100] {
			t.Fatalf("pre-transfer write %d executed after the transfer: %v", seq, svc.order)
		}
	}
	for _, seq := range []uint64{201, 202} {
		if pos[seq] < pos[100] {
			t.Fatalf("post-transfer write %d executed before the transfer: %v", seq, svc.order)
		}
	}
}

// Readers admitted after a multi-key token latch onto its completion
// gate; a transfer admitted after a reader set waits for the set to
// drain. Both directions, no overlap.
func TestIndexMultiKeyReaderInterlock(t *testing.T) {
	compiled, err := cdep.Compile(spec(), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := newTraceSetService(compiled, 3*time.Millisecond)
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	e, err := StartIndex(Config{Workers: 8, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = e.Close() })

	// Reader set on key 5, transfer {5,6} behind it, readers on both
	// keys behind the transfer.
	for i := uint64(1); i <= 4; i++ {
		e.Submit(&command.Request{Client: i, Seq: 1, Cmd: cmdRead, Input: input(5, i)})
	}
	e.Submit(&command.Request{Client: 10, Seq: 1, Cmd: cmdXfer, Input: input3(5, 6, 50)})
	e.Submit(&command.Request{Client: 11, Seq: 1, Cmd: cmdRead, Input: input(5, 60)})
	e.Submit(&command.Request{Client: 12, Seq: 1, Cmd: cmdRead, Input: input(6, 61)})
	waitSetExecuted(t, svc, 7)
	if svc.violation.Load() {
		t.Fatal("transfer overlapped a reader")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	pos := make(map[uint64]int, len(svc.order))
	for i, seq := range svc.order {
		pos[seq] = i
	}
	for seq := uint64(1); seq <= 4; seq++ {
		if pos[seq] > pos[50] {
			t.Fatalf("reader %d ran after the transfer: %v", seq, svc.order)
		}
	}
	for _, seq := range []uint64{60, 61} {
		if pos[seq] < pos[50] {
			t.Fatalf("reader %d ran before the transfer: %v", seq, svc.order)
		}
	}
}

// A transfer whose input is too short to yield a key set must fall
// back to synchronous mode (full barrier) on both engines and still
// execute exactly once.
func TestMultiKeyKeylessFallsBackToBarrier(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			var count atomic.Int64
			e, net := startEngine(t, kind, 4, countingService{&count}, Tuning{})
			reply, err := net.Listen("probe-mk")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			if !e.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdXfer, Input: []byte{1, 2}, Reply: "probe-mk"}) {
				t.Fatal("Submit failed")
			}
			recvFrame(t, reply)
			if got := count.Load(); got != 1 {
				t.Fatalf("executions = %d, want 1", got)
			}
		})
	}
}

// xferState is a deterministic toy state machine whose outputs expose
// ordering: writes set key → seq returning the previous value, reads
// return the current value, transfers SWAP two keys' values returning
// both previous values, globals fold the whole state.
type xferState struct {
	mu    sync.Mutex
	state map[uint64]uint64
}

func (s *xferState) Execute(cmd command.ID, in []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case cmdXfer:
		k1 := binary.LittleEndian.Uint64(in)
		k2 := binary.LittleEndian.Uint64(in[8:16])
		v1, v2 := s.state[k1], s.state[k2]
		s.state[k1], s.state[k2] = v2, v1
		return []byte(fmt.Sprintf("x%d,%d", v1, v2))
	case cmdWrite:
		k, _ := key(in)
		seq := binary.LittleEndian.Uint64(in[8:16])
		prev := s.state[k]
		s.state[k] = seq
		return []byte(fmt.Sprintf("w%d", prev))
	case cmdRead:
		k, _ := key(in)
		return []byte(fmt.Sprintf("r%d", s.state[k]))
	case cmdPing:
		return []byte(fmt.Sprintf("p%d", binary.LittleEndian.Uint64(in[8:16])))
	default: // global: fold the state
		var sum uint64
		for k, v := range s.state {
			sum += k ^ (v * 31)
		}
		return []byte(fmt.Sprintf("g%d", sum))
	}
}

// The multi-key acceptance bar: one ordered stream mixing two-key
// transfers, keyed writes, keyed READ-ONLY commands, independent pings
// and full barriers — with batched admission, reader sets and work
// stealing all enabled — must produce identical outputs on the scan
// and index engines. Runs under `make race`.
func TestMultiKeyDeterminismAcrossEngines(t *testing.T) {
	const (
		n       = 4000
		workers = 8
	)
	type reqID struct{ client, seq uint64 }
	build := func(reply transport.Addr) []*command.Request {
		reqs := make([]*command.Request, 0, n)
		for i := uint64(1); i <= n; i++ {
			var req *command.Request
			switch {
			case i%101 == 0:
				req = &command.Request{Cmd: cmdGlobal, Input: input(999, i)}
			case i%5 == 0:
				req = &command.Request{Cmd: cmdXfer, Input: input3(i%9, (i*3+1)%9, i)}
			case i%3 == 0:
				req = &command.Request{Cmd: cmdRead, Input: input(i%9, i)}
			case i%7 == 0:
				req = &command.Request{Cmd: cmdPing, Input: input(5000+i, i)}
			default:
				req = &command.Request{Cmd: cmdWrite, Input: input(i%9, i)}
			}
			req.Client, req.Seq, req.Reply = 1+i%32, i, reply
			reqs = append(reqs, req)
		}
		return reqs
	}
	run := func(t *testing.T, kind SchedulerKind, batch int) map[reqID]string {
		net := transport.NewMemNetwork(1)
		t.Cleanup(func() { _ = net.Close() })
		compiled, err := cdep.Compile(spec(), workers)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		e, err := StartEngine(Config{
			Kind: kind, Workers: workers,
			Service:  &xferState{state: make(map[uint64]uint64)},
			Compiled: compiled, Transport: net,
		})
		if err != nil {
			t.Fatalf("StartEngine: %v", err)
		}
		t.Cleanup(func() { _ = e.Close() })
		reply, err := net.Listen(transport.Addr("probe-det/" + kind.String()))
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		reqs := build(reply.Addr())
		for i := 0; i < len(reqs); i += batch {
			end := min(i+batch, len(reqs))
			if batch == 1 {
				if !e.Submit(reqs[i]) {
					t.Fatal("Submit failed")
				}
			} else if !e.SubmitBatch(reqs[i:end]) {
				t.Fatal("SubmitBatch failed")
			}
		}
		out := make(map[reqID]string, n)
		deadline := time.After(30 * time.Second)
		for len(out) < n {
			select {
			case frame := <-reply.Recv():
				resp, err := command.DecodeResponse(frame)
				if err != nil {
					t.Fatalf("DecodeResponse: %v", err)
				}
				out[reqID{resp.Client, resp.Seq}] = string(resp.Output)
			case <-deadline:
				t.Fatalf("timed out with %d/%d responses", len(out), n)
			}
		}
		return out
	}

	scan := run(t, KindScan, 1)
	index := run(t, KindIndex, 47)
	for id, want := range scan {
		if got := index[id]; got != want {
			t.Fatalf("output mismatch for client %d seq %d: scan %q, index %q",
				id.client, id.seq, want, got)
		}
	}
}

// Steal-aware placement: stealing from a queue records a raided
// penalty, leastLoaded treats the penalty as load, and the penalty
// decays once the owner drains its queue.
func TestStealAwarePlacementFeedback(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	compiled, err := cdep.Compile(spec(), 2)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// Closed engine: the queues are plain data structures, so steal()
	// and leastLoaded() can be driven deterministically.
	s, err := StartIndex(Config{Workers: 2, Service: countingService{&atomic.Int64{}},
		Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	_ = s.Close()

	frees := make([]*inode, 4)
	for i := range frees {
		frees[i] = &inode{req: &command.Request{Client: 1, Seq: uint64(i + 1), Cmd: cmdPing}}
	}
	s.queues[0].pushBatch(frees)
	sc := &stealScratch{
		batch: make([]*inode, 0, s.stealBatch),
		keep:  make([]*inode, 0, 8*s.stealBatch),
	}
	batch := s.steal(1, sc)
	if len(batch) != 4 {
		t.Fatalf("stole %d, want 4", len(batch))
	}
	if got := s.queues[0].raided.Load(); got != 4 {
		t.Fatalf("raided = %d, want 4", got)
	}
	// Queue 0 now carries a raided penalty; with queue 1 holding the 4
	// stolen commands as load, placement must still avoid queue 0 once
	// its penalty exceeds queue 1's load... and prefer it again when
	// the penalty is cleared.
	s.queues[1].load.Store(0)
	if got := s.leastLoaded(0); got != 1 {
		t.Fatalf("leastLoaded with raided(0)=4 = %d, want 1", got)
	}
	s.queues[0].raided.Store(0)
	if got := s.leastLoaded(0); got != 0 {
		t.Fatalf("leastLoaded with penalty cleared = %d, want 0", got)
	}
}

// The raided penalty decays in a LIVE engine once the raided queue's
// owner drains it: pin a free command to worker 0 so its worker wakes,
// empties its queue and halves the counter.
func TestStealAwarePenaltyDecays(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	compiled, err := cdep.Compile(spec(), 2, cdep.WithWorkerSet(cmdPing, 0))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var count atomic.Int64
	s, err := StartIndex(Config{Workers: 2, Service: countingService{&count},
		Compiled: compiled, Transport: net, Tuning: Tuning{NoSteal: true}})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	s.queues[0].raided.Store(64)
	// The worker-set pin overrides the penalty, so the ping lands on
	// queue 0 and wakes its owner.
	if !s.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdPing, Input: input(1, 1)}) {
		t.Fatal("Submit failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if count.Load() == 1 && s.queues[0].raided.Load() < 64 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("raided penalty did not decay: %d", s.queues[0].raided.Load())
}
