package sched

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// xferInput encodes a two-key transfer input ([k1][k2][seq]).
func xferInput(k1, k2, seq uint64) []byte {
	in := make([]byte, 24)
	binary.LittleEndian.PutUint64(in, k1)
	binary.LittleEndian.PutUint64(in[8:], k2)
	binary.LittleEndian.PutUint64(in[16:], seq)
	return in
}

// TestAdmitKeyedIndexBatchZeroAlloc pins the zero-alloc admission
// claim: the batched keyed path of the index engine — dedup, routing,
// shard locks, ingress hand-off, execution, completion — performs zero
// heap allocations per command at steady state.
func TestAdmitKeyedIndexBatchZeroAlloc(t *testing.T) {
	if benchRaceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test skipped in -short")
	}
	r := testing.Benchmark(BenchmarkAdmitKeyedIndexBatch)
	if a := r.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkAdmitKeyedIndexBatch: %d allocs/op (%d B/op), want 0",
			a, r.AllocedBytesPerOp())
	}
}

// handoffBenchKeys pins the benchmark's keys so the scenario is
// deterministic: the slow key S lives on worker 0, the transfer's fast
// key F and all the unrelated keys live on worker 1. The remaining six
// workers stay idle (every command is keyed, so nothing is stealable):
// the benchmark isolates the two owners' interaction at the 8-worker
// configuration the acceptance bar names.
const (
	handoffSlowKey = 1
	handoffFastKey = 2
	handoffFreeKey = 100 // unrelated keys: handoffFreeKey+j
)

// benchMultiKeyHandoff measures the cost the parking rendezvous charges
// an owner for unrelated work queued behind a multi-key token. Each
// iteration, fully drained before the next:
//
//   - M writes on the slow key S (pinned to worker 0) — the backlog
//     that keeps the token pending,
//   - one transfer {S, F} (F pinned to worker 1) — the token,
//   - W writes on W distinct unrelated keys pinned to worker 1,
//     admitted AFTER the token.
//
// Under the parking rendezvous worker 1 pops the token immediately and
// parks through worker 0's entire backlog, so the unrelated work only
// starts after the transfer: ~(M+1+W)·sleep serialized. Under the
// handoff worker 1 deposits and keeps draining, overlapping the
// unrelated work with the backlog: ~max(M+1, W)·sleep. With M = W = 16
// the model ratio is ~1.9x; the speedup test below asserts >= 1.5x.
func benchMultiKeyHandoff(b *testing.B, park bool) {
	b.Helper()
	const (
		workers   = 8
		backlogM  = 16
		unrelated = 16
		sleep     = 20 * time.Microsecond
	)
	net := transport.NewMemNetwork(1)
	defer net.Close()
	pins := map[uint64]int{handoffSlowKey: 0, handoffFastKey: 1}
	for j := 0; j < unrelated; j++ {
		pins[handoffFreeKey+uint64(j)] = 1
	}
	compiled, err := cdep.Compile(spec(), workers, cdep.WithPlacement(pins))
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &sleepService{d: sleep}
	e, err := StartIndex(Config{
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
		Tuning:    Tuning{NoMKHandoff: park},
	})
	if err != nil {
		b.Fatalf("StartIndex: %v", err)
	}
	defer e.Close()

	var done, seq int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < backlogM; j++ {
			seq++
			if !e.Submit(&command.Request{
				Client: 1, Seq: uint64(seq), Cmd: cmdWrite,
				Input: input(handoffSlowKey, uint64(seq)),
			}) {
				b.Fatal("Submit failed")
			}
		}
		seq++
		if !e.Submit(&command.Request{
			Client: 1, Seq: uint64(seq), Cmd: cmdXfer,
			Input: xferInput(handoffSlowKey, handoffFastKey, uint64(seq)),
		}) {
			b.Fatal("Submit failed")
		}
		for j := 0; j < unrelated; j++ {
			seq++
			if !e.Submit(&command.Request{
				Client: 1, Seq: uint64(seq), Cmd: cmdWrite,
				Input: input(handoffFreeKey+uint64(j), uint64(seq)),
			}) {
				b.Fatal("Submit failed")
			}
		}
		done += backlogM + 1 + unrelated
		for svc.n.Load() < done {
			runtime.Gosched()
		}
	}
	b.StopTimer()
}

// BenchmarkMultiKeyHandoff is the deposit-and-continue protocol;
// BenchmarkMultiKeyHandoffPark is the parking-rendezvous baseline on
// the identical workload (Tuning.NoMKHandoff).
func BenchmarkMultiKeyHandoff(b *testing.B)     { benchMultiKeyHandoff(b, false) }
func BenchmarkMultiKeyHandoffPark(b *testing.B) { benchMultiKeyHandoff(b, true) }

// TestMultiKeyHandoffSpeedup pins the perf claim: with owners loaded
// with unrelated work at 8 workers, the handoff must beat the parking
// rendezvous by at least 1.5x (the model predicts ~1.9x; 1.5x leaves
// slack for noisy CI boxes).
func TestMultiKeyHandoffSpeedup(t *testing.T) {
	if benchRaceEnabled {
		t.Skip("timing ratios are meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	best := func(bench func(*testing.B)) float64 {
		bestNs := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(bench)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if ns > 0 && (bestNs == 0 || ns < bestNs) {
				bestNs = ns
			}
		}
		return bestNs
	}
	// Best-of-three per variant: noise on a loaded CI box only ever
	// slows a run down, so minima compare the real costs.
	park := best(BenchmarkMultiKeyHandoffPark)
	handoff := best(BenchmarkMultiKeyHandoff)
	if park <= 0 || handoff <= 0 {
		t.Fatalf("degenerate timings: park %v ns/round, handoff %v ns/round", park, handoff)
	}
	ratio := park / handoff
	t.Logf("multi-key round: park %.0f ns, handoff %.0f ns, speedup %.2fx", park, handoff, ratio)
	if ratio < 1.5 {
		t.Fatalf("handoff speedup %.2fx over parking rendezvous, want >= 1.5x", ratio)
	}
}

// handoffProbeService blocks writes to the slow key until released and
// counts the other executions, so tests can observe the engine with a
// multi-key token provably pending.
type handoffProbeService struct {
	release   chan struct{}
	blocked   atomic.Int64 // writes to handoffSlowKey currently parked
	unrelated atomic.Int64 // writes to other keys completed
	xfers     atomic.Int64 // transfers completed
}

func (s *handoffProbeService) Execute(cmd command.ID, in []byte) []byte {
	switch cmd {
	case cmdXfer:
		s.xfers.Add(1)
	case cmdWrite:
		if binary.LittleEndian.Uint64(in) == handoffSlowKey {
			s.blocked.Add(1)
			<-s.release
		} else {
			s.unrelated.Add(1)
		}
	}
	return nil
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startHandoffProbe builds a 2-worker engine with the slow key pinned
// to worker 0 and everything else pinned to worker 1, submits a write
// that blocks inside the service on worker 0, then a transfer token
// {slow, fast} and ten unrelated writes for worker 1.
func startHandoffProbe(t *testing.T, park bool) (*IndexScheduler, *handoffProbeService) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	pins := map[uint64]int{handoffSlowKey: 0, handoffFastKey: 1}
	for j := 0; j < 10; j++ {
		pins[handoffFreeKey+uint64(j)] = 1
	}
	compiled, err := cdep.Compile(spec(), 2, cdep.WithPlacement(pins))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := &handoffProbeService{release: make(chan struct{})}
	s, err := StartIndex(Config{
		Workers: 2, Service: svc, Compiled: compiled, Transport: net,
		Tuning: Tuning{NoMKHandoff: park},
	})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })

	seq := uint64(0)
	submit := func(cmd command.ID, in []byte) {
		seq++
		if !s.Submit(&command.Request{Client: 1, Seq: seq, Cmd: cmd, Input: in}) {
			t.Fatal("Submit failed")
		}
	}
	submit(cmdWrite, input(handoffSlowKey, 1))
	waitCond(t, "slow write to park in the service", func() bool { return svc.blocked.Load() == 1 })
	submit(cmdXfer, xferInput(handoffSlowKey, handoffFastKey, 2))
	for j := 0; j < 10; j++ {
		submit(cmdWrite, input(handoffFreeKey+uint64(j), uint64(3+j)))
	}
	return s, svc
}

// TestHandoffOwnersKeepDraining is the protocol's point: with the
// transfer token pending (its slow-key owner stuck behind a blocked
// write), the fast-key owner deposits and keeps executing the
// unrelated keyed work queued behind the token — then the release
// makes the last owner execute the transfer.
func TestHandoffOwnersKeepDraining(t *testing.T) {
	_, svc := startHandoffProbe(t, false)
	waitCond(t, "unrelated work to drain past the pending token", func() bool {
		return svc.unrelated.Load() == 10
	})
	if got := svc.xfers.Load(); got != 0 {
		t.Fatalf("transfer executed (%d) while an owner had not deposited", got)
	}
	close(svc.release)
	waitCond(t, "transfer to execute after the deposit", func() bool {
		return svc.xfers.Load() == 1
	})
}

// TestParkRendezvousIdlesOwner is the baseline contrast: under
// Tuning.NoMKHandoff the fast-key owner parks at the token, so the
// unrelated work behind it cannot start until the transfer executes.
func TestParkRendezvousIdlesOwner(t *testing.T) {
	_, svc := startHandoffProbe(t, true)
	// Direction-of-time assertion: give the engine ample opportunity to
	// (wrongly) run the unrelated work, then check it did not.
	time.Sleep(30 * time.Millisecond)
	if got := svc.unrelated.Load(); got != 0 {
		t.Fatalf("parked owner executed %d unrelated commands past a pending token", got)
	}
	close(svc.release)
	waitCond(t, "everything to drain after the release", func() bool {
		return svc.xfers.Load() == 1 && svc.unrelated.Load() == 10
	})
}

// TestMKTokenDrainDecaysRaided is the placement-feedback regression
// test: draining a multi-key token must halve the queue's raided
// penalty exactly like an empty-queue pop does — a token-fed queue
// never goes empty, so before the fix the penalty stuck at its peak.
// Worker 0's stream is [blocker, xfer×3, blocker]: the counter is
// armed while the worker is provably parked inside the first blocker
// (no pop can race the store), and read back once it is parked inside
// the second — between the two it popped exactly the three tokens, so
// only the token-drain decay can account for the change.
func TestMKTokenDrainDecaysRaided(t *testing.T) {
	net := transport.NewMemNetwork(1)
	pins := map[uint64]int{handoffSlowKey: 0, handoffFastKey: 1}
	compiled, err := cdep.Compile(spec(), 2, cdep.WithPlacement(pins))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := &handoffProbeService{release: make(chan struct{})}
	s, err := StartIndex(Config{Workers: 2, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })

	reqs := []*command.Request{
		{Client: 1, Seq: 1, Cmd: cmdWrite, Input: input(handoffSlowKey, 1)},
		{Client: 1, Seq: 2, Cmd: cmdXfer, Input: xferInput(handoffSlowKey, handoffFastKey, 2)},
		{Client: 1, Seq: 3, Cmd: cmdXfer, Input: xferInput(handoffSlowKey, handoffFastKey, 3)},
		{Client: 1, Seq: 4, Cmd: cmdXfer, Input: xferInput(handoffSlowKey, handoffFastKey, 4)},
		{Client: 1, Seq: 5, Cmd: cmdWrite, Input: input(handoffSlowKey, 5)},
	}
	if !s.SubmitBatch(reqs) {
		t.Fatal("SubmitBatch failed")
	}
	waitCond(t, "worker 0 to park inside the first blocker", func() bool {
		return svc.blocked.Load() == 1
	})
	s.queues[0].raided.Store(64)
	svc.release <- struct{}{} // free the first blocker only
	waitCond(t, "worker 0 to drain the tokens and park inside the second blocker", func() bool {
		return svc.blocked.Load() == 2 && svc.xfers.Load() == 3
	})
	if got := s.queues[0].raided.Load(); got != 8 {
		t.Fatalf("worker 0 raided = %d after draining 3 multi-key tokens, want 8 (64 halved 3x)", got)
	}
	close(svc.release)
}
