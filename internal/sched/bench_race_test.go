//go:build race

package sched

// benchRaceEnabled skips timing-ratio and allocation assertions under
// the race detector, whose instrumentation skews both the costs being
// compared and the allocation counts.
const benchRaceEnabled = true
