// Package sched implements the scheduling engines shared by the
// sP-SMR replica and the no-rep server (paper §VI-B). Both engines
// admit the same ordered command stream — one command at a time
// (Submit) or one decided batch at a time (SubmitBatch) — and dispatch
// independent commands onto a pool of worker threads while dependent
// commands execute in admission order:
//
//   - The scan engine (KindScan) is the paper's sP-SMR scheduler: a
//     single scheduler thread tracks conflicts against the live
//     (executing or parked) command set using the service's C-Dep and
//     hands ready commands to a shared worker pool. Being one thread,
//     it is the architectural bottleneck the paper measures — it
//     saturates a core while workers idle (Figures 3, 5 and 7).
//   - The index engine (KindIndex) removes that thread: conflict
//     resolution is precompiled into class-to-worker routes
//     (cdep.Compiled.Route, "early scheduling") plus a hash-sharded
//     per-key conflict index, so admission is O(1) routing straight
//     into per-worker ingress queues. Per-key reader sets let same-key
//     read-only commands run concurrently behind the key's last
//     writer, batched admission amortises shard and ingress locks over
//     a decided batch, and idle workers steal non-keyed work from the
//     longest queue (keyed chains never migrate). See index.go.
//
// Both engines route MULTI-KEY commands (cdep.RouteMultiKey, key sets
// instead of a single key) without a global barrier: the scan engine
// chains the command as a writer of every key it touches; the index
// engine enqueues one token on every owner worker in sorted-key order
// and runs a deposit-and-continue handoff — each owner atomically
// deposits "arrived" at its token and keeps draining unrelated work,
// and the last depositor executes, so an N-key command no longer idles
// N−1 workers. The parking rendezvous it replaced survives behind
// Tuning.NoMKHandoff as the ablation baseline; both protocols realize
// the same 2PL lock point over the per-key FIFOs (see index.go for the
// safety and deadlock-freedom argument).
//
// Both engines are deterministic with respect to their input stream: a
// command waits for exactly the earlier-admitted live commands that
// conflict with it, so every pair of dependent commands executes in
// admission order and both engines produce identical outputs for the
// same ordered stream.
package sched

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/dedup"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

// SchedulerKind selects the scheduling engine.
type SchedulerKind int

// Scheduling engines.
const (
	// KindScan is the paper's sP-SMR scheduler: a dedicated scheduler
	// thread tracks conflicts against the live command set at admission
	// time and hands ready commands to a shared worker pool. It is the
	// architectural bottleneck the paper measures (Figures 3, 5, 7).
	KindScan SchedulerKind = iota
	// KindIndex is the index-based early scheduler: conflict resolution
	// is precomputed at cdep.Compile time (class-to-worker-set routes)
	// plus a hash-sharded per-key conflict index, so admission is O(1)
	// and commands flow straight into per-worker ingress queues — no
	// scheduler thread sits between delivery and execution.
	KindIndex
)

func (k SchedulerKind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindIndex:
		return "index"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// Engine is a running scheduling engine: the scan scheduler or the
// index-based early scheduler. Submit admits commands in order (single
// producer or externally serialized producers); SubmitBatch admits one
// decided batch in order, equivalent to Submit per element but letting
// the engine amortise per-burst costs (the caller must not reuse the
// slice afterwards); Close stops the engine and waits for its
// goroutines. A producer must pick ONE of the two admission paths and
// stick to it: the index engine preserves order across them, but the
// scan engine hands each path to its scheduler over a separate
// channel, so interleaving Submit and SubmitBatch calls would lose the
// cross-path admission order (the delivery pumps always use exactly
// one path, selected by Tuning.NoBatchAdmit).
//
// SubmitMarker admits a QUIESCE MARKER: fn runs exactly once, with
// every worker thread rendezvoused at the marker — all commands
// admitted before it have completed, none admitted after it has
// started. This is how the checkpoint subsystem snapshots the service
// at one deterministic log position without stopping the engine.
// Markers ride the same global-barrier machinery as Global commands
// and are ordered with respect to the SubmitBatch stream (checkpointed
// delivery pumps therefore always use batched admission).
type Engine interface {
	Submit(req *command.Request) bool
	SubmitBatch(reqs []*command.Request) bool
	SubmitMarker(fn func()) bool
	Close() error
}

// StartEngine launches the engine selected by cfg.Kind.
func StartEngine(cfg Config) (Engine, error) {
	switch cfg.Kind {
	case KindIndex:
		return StartIndex(cfg)
	case KindScan:
		return Start(cfg)
	default:
		return nil, fmt.Errorf("sched: unknown scheduler kind %d", int(cfg.Kind))
	}
}

// Config configures a scheduler and its worker pool.
type Config struct {
	// Kind selects the engine; the zero value is the scan scheduler.
	Kind SchedulerKind
	// Workers is the execution pool size (the scheduler thread is
	// extra, matching how the paper counts threads).
	Workers int
	// Service is the deterministic state machine.
	Service command.Service
	// Exec optionally replaces Service.Execute as the execution hook:
	// it receives the full request, so a layer above the engine (the
	// optimistic speculation executor) can thread per-request
	// bookkeeping — undo records, completion signalling — through the
	// engine's conflict-respecting scheduling. When Exec is set the
	// engines also SKIP their internal at-most-once layer (response
	// cache and in-flight duplicate filter): the hook's owner does its
	// own deduplication and may legitimately re-admit a request id it
	// rolled back, which the engine-level filter would silently swallow
	// (deadlocking a reconciler that waits for the re-execution).
	Exec func(req *command.Request) []byte
	// Compiled answers conflict queries (from the service's C-Dep).
	Compiled *cdep.Compiled
	// Transport sends responses.
	Transport transport.Transport
	// QueueBound sizes the scan engine's hand-off channel to the
	// worker pool. Default 1024 (the scheduler's own ready list is
	// unbounded). The index engine's ingress deques are unbounded and
	// ignore it (see index.go).
	QueueBound int
	// DedupWindow bounds the per-client at-most-once table. Default 512.
	DedupWindow int
	// CPU optionally meters scheduler and worker busy time.
	CPU *bench.CPUMeter
	// Trace optionally stamps sampled commands at the engine-admission
	// and execution stage boundaries (nil disables tracing at zero
	// cost on the admission fast path).
	Trace *obs.Tracer
	// Journal optionally records steal/handoff events in the flight
	// recorder.
	Journal *obs.Journal
	// Tuning carries the batch-admission pipeline knobs (all default
	// on); the engines read the reader-set and stealing switches, the
	// delivery paths read NoBatchAdmit.
	Tuning
}

// Tuning switches the batch-first pipeline optimisations off for
// ablation. The zero value is the production configuration: batched
// admission, reader sets, and work stealing all enabled.
type Tuning struct {
	// NoBatchAdmit makes the delivery paths (sP-SMR pump, no-rep
	// server) hand commands to the engine one Submit at a time instead
	// of one SubmitBatch per decided batch.
	NoBatchAdmit bool
	// NoReaderSets makes the index engine serialize same-key read-only
	// commands on the key's FIFO like writers (the pre-reader-set
	// behavior); the scan engine ignores it.
	NoReaderSets bool
	// NoSteal disables work stealing between the index engine's
	// per-worker ingress queues.
	NoSteal bool
	// StealBatch caps the commands moved per steal. Default 8.
	StealBatch int
	// NoMKHandoff makes the index engine run multi-key commands with
	// the parking owner rendezvous (every owner worker idles at its
	// token until the executor releases it) instead of the default
	// deposit-and-continue handoff where owners keep draining unrelated
	// work and the last depositor executes. The two protocols produce
	// byte-identical results (see index.go); this is the ablation
	// baseline the handoff is measured against. The scan engine
	// ignores it.
	NoMKHandoff bool
	// AdmitYieldEvery paces the UNPACED direct delivery path (the
	// no-rep server): its admission loop yields the processor after
	// this many admitted commands, so on starved-core hosts the worker
	// goroutines are not convoyed behind a hot admission loop (the
	// p50≈0 / 50-300ms-tail bimodality seen on 1-core runs). Default
	// 64. The sP-SMR path is already paced by consensus batching and
	// ignores it.
	AdmitYieldEvery int
	// NoAdmitYield disables the direct-path admission yield.
	NoAdmitYield bool
}

// Label renders the tuning as "batch+rs+steal"-style ablation tags.
func (t Tuning) Label() string {
	parts := []string{"batch", "rs", "steal"}
	if t.NoBatchAdmit {
		parts[0] = "single"
	}
	if t.NoReaderSets {
		parts[1] = "nors"
	}
	if t.NoSteal {
		parts[2] = "nosteal"
	}
	if t.NoMKHandoff {
		// Appended only when set, so the established three-part tags
		// stay stable for the existing ablations.
		parts = append(parts, "park")
	}
	return strings.Join(parts, "+")
}

// Scheduler is a running scheduler-worker engine. Feed it with Submit
// (single producer or externally serialized producers) and stop it
// with Close.
type Scheduler struct {
	cfg Config

	reqCh   chan *command.Request
	batchCh chan admission
	readyCh chan *node
	doneCh  chan *node
	stop    chan struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// admission is one hand-off on the scan engine's batch path: a decided
// batch, or a quiesce marker. Sharing one channel keeps markers ordered
// with the batches around them.
type admission struct {
	reqs   []*command.Request
	marker func()
}

// node is one admitted command in the dependency graph (or a quiesce
// marker when marker is non-nil — req is nil then).
type node struct {
	req        *command.Request
	marker     func()
	waitCount  int
	dependents []*node
	output     []byte

	keyed  bool
	writer bool
	key    uint64
	mkeys  []uint64 // multi-key commands: sorted key set (keyed false)
}

// requestID keys the in-flight duplicate filter.
type requestID struct {
	client, seq uint64
}

// keyState tracks the live commands touching one key: the latest
// writer plus the readers admitted since. Readers depend on the last
// writer; a new writer depends on the last writer and all readers.
type keyState struct {
	lastWriter *node
	readers    []*node
}

// Start launches the scheduler thread and the worker pool.
func Start(cfg Config) (*Scheduler, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sched: %d workers", cfg.Workers)
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 1024
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 512
	}
	if cfg.Compiled == nil {
		return nil, fmt.Errorf("sched: Compiled is required")
	}
	if cfg.Service == nil && cfg.Exec == nil {
		return nil, fmt.Errorf("sched: Service or Exec is required")
	}
	s := &Scheduler{
		cfg:     cfg,
		reqCh:   make(chan *command.Request, 4096),
		batchCh: make(chan admission, 256),
		readyCh: make(chan *node, cfg.QueueBound),
		doneCh:  make(chan *node, cfg.QueueBound),
		stop:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.schedule()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.work()
	}
	return s, nil
}

// Submit admits one command. It reports false once the scheduler is
// stopping. Commands are scheduled in Submit order.
func (s *Scheduler) Submit(req *command.Request) bool {
	select {
	case <-s.stop:
		return false
	default:
	}
	select {
	case s.reqCh <- req:
		return true
	case <-s.stop:
		return false
	}
}

// SubmitBatch admits one decided batch: a single channel hand-off to
// the scheduler thread instead of one per command, which amortises the
// producer/scheduler synchronization over a burst. The scheduler takes
// ownership of the slice. It reports false once the scheduler is
// stopping.
func (s *Scheduler) SubmitBatch(reqs []*command.Request) bool {
	if len(reqs) == 0 {
		return true
	}
	select {
	case <-s.stop:
		return false
	default:
	}
	select {
	case s.batchCh <- admission{reqs: reqs}:
		return true
	case <-s.stop:
		return false
	}
}

// SubmitMarker admits a quiesce marker on the batch path: fn runs once
// every command admitted before it has completed, alone, before
// anything admitted after it starts. It reports false once the
// scheduler is stopping.
func (s *Scheduler) SubmitMarker(fn func()) bool {
	if fn == nil {
		return true
	}
	select {
	case <-s.stop:
		return false
	default:
	}
	select {
	case s.batchCh <- admission{marker: fn}:
		return true
	case <-s.stop:
		return false
	}
}

// Close drains nothing: it stops the engine and waits for the
// goroutines to exit.
func (s *Scheduler) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
	return nil
}

// schedule is the single scheduler thread: conflict tracking,
// dependency bookkeeping, dispatch, and response dedup.
func (s *Scheduler) schedule() {
	defer s.wg.Done()
	defer close(s.readyCh)

	cpu := s.cfg.CPU.Role("scheduler")
	var (
		live        = make(map[*node]struct{})
		inflight    = make(map[requestID]struct{})
		keys        = make(map[uint64]*keyState)
		lastBarrier *node
		table       = dedup.NewTable(s.cfg.DedupWindow)
		ready       []*node
	)

	releaseKey := func(n *node, key uint64) {
		ks, ok := keys[key]
		if !ok {
			return
		}
		if n.writer {
			if ks.lastWriter == n {
				ks.lastWriter = nil
			}
		} else {
			for i, rd := range ks.readers {
				if rd == n {
					ks.readers = append(ks.readers[:i], ks.readers[i+1:]...)
					break
				}
			}
		}
		if ks.lastWriter == nil && len(ks.readers) == 0 {
			delete(keys, key)
		}
	}

	release := func(n *node) {
		delete(live, n)
		if n.req != nil && s.cfg.Exec == nil {
			delete(inflight, requestID{client: n.req.Client, seq: n.req.Seq})
			table.Record(n.req.Client, n.req.Seq, n.output)
		}
		if lastBarrier == n {
			lastBarrier = nil
		}
		if n.keyed {
			releaseKey(n, n.key)
		}
		for _, key := range n.mkeys {
			releaseKey(n, key)
		}
		for _, d := range n.dependents {
			d.waitCount--
			if d.waitCount == 0 {
				ready = append(ready, d)
			}
		}
		n.dependents = nil
	}

	admit := func(req *command.Request) {
		s.cfg.Trace.StampID(obs.StageEngineAdmit, req.Client, req.Seq)
		// With an external execution hook the at-most-once layer moves
		// to the hook's owner (see Config.Exec).
		if s.cfg.Exec == nil {
			if out, dup := table.Lookup(req.Client, req.Seq); dup {
				s.respond(req, out)
				return
			}
			// Drop retransmissions whose original is still live: without
			// this, a latency spike past the client retry interval admits
			// duplicate nodes, which lengthens the queue, which raises
			// latency, which triggers more retransmissions — a metastable
			// collapse the system never exits. The client is answered
			// when the original completes (or by the dedup table on its
			// next retry after that).
			id := requestID{client: req.Client, seq: req.Seq}
			if _, dup := inflight[id]; dup {
				return
			}
			inflight[id] = struct{}{}
		}
		n := &node{req: req}
		addDep := func(dep *node) {
			if dep == nil {
				return
			}
			if _, ok := live[dep]; !ok {
				return
			}
			dep.dependents = append(dep.dependents, n)
			n.waitCount++
		}

		// barrier makes n wait for every live command and run alone
		// (the paper's scheduler "waits for the worker threads to
		// finish their ongoing work").
		barrier := func() {
			for m := range live {
				addDep(m)
			}
			lastBarrier = n
		}
		// writerOn chains n as a writer of one key: behind the key's
		// last writer and the readers admitted since.
		writerOn := func(key uint64) {
			ks := keys[key]
			if ks == nil {
				ks = &keyState{}
				keys[key] = ks
			}
			addDep(ks.lastWriter)
			for _, rd := range ks.readers {
				addDep(rd)
			}
			ks.lastWriter = n
			ks.readers = nil
		}
		// readerOn joins n to one key's reader list: behind the key's
		// last writer only, concurrent with the other readers.
		readerOn := func(key uint64) {
			ks := keys[key]
			if ks == nil {
				ks = &keyState{}
				keys[key] = ks
			}
			addDep(ks.lastWriter)
			ks.readers = append(ks.readers, n)
		}

		switch class := s.cfg.Compiled.Class(req.Cmd); {
		case s.cfg.Compiled.GlobalConflict(req.Cmd):
			barrier()
		case class == cdep.MultiKeyed:
			mkeys, ok := s.cfg.Compiled.KeySet(req.Cmd, req.Input)
			if !ok {
				// Undeterminable key set may touch any object:
				// serialize like a global command (matching the index
				// engine's keyless fallback).
				barrier()
				break
			}
			addDep(lastBarrier)
			n.mkeys = mkeys
			// Read-only multi-key commands (snapshot reads) join every
			// touched key's reader list: they wait only for the keys'
			// last writers and run concurrently with each other, while
			// the next writer of any touched key waits for them.
			n.writer = !s.cfg.Compiled.Route(req.Cmd).ReadOnly
			for _, key := range mkeys {
				if n.writer {
					writerOn(key)
				} else {
					readerOn(key)
				}
			}
		case class == cdep.Keyed:
			key, ok := s.cfg.Compiled.Key(req.Cmd, req.Input)
			if !ok {
				// Keyless invocation of a keyed command: synchronous
				// mode, like the index engine.
				barrier()
				break
			}
			addDep(lastBarrier)
			n.keyed = true
			n.key = key
			// The compiled route's read-only bit decides reader vs
			// writer (shared with the index engine's reader sets,
			// so the two engines cannot drift): a writer either
			// self-conflicts or conflicts with another non-writer.
			n.writer = !s.cfg.Compiled.Route(req.Cmd).ReadOnly
			if n.writer {
				writerOn(key)
			} else {
				readerOn(key)
			}
		default:
			addDep(lastBarrier)
		}
		live[n] = struct{}{}
		if n.waitCount == 0 {
			ready = append(ready, n)
		}
	}

	// admitMarker admits a quiesce marker: a barrier node carrying a
	// closure instead of a command — it waits for every live command,
	// runs alone, and everything admitted later waits for it.
	admitMarker := func(fn func()) {
		n := &node{marker: fn}
		for m := range live {
			m.dependents = append(m.dependents, n)
			n.waitCount++
		}
		lastBarrier = n
		live[n] = struct{}{}
		if n.waitCount == 0 {
			ready = append(ready, n)
		}
	}

	// admitAdmission dispatches one batch-path hand-off.
	admitAdmission := func(adm admission) {
		if adm.marker != nil {
			admitMarker(adm.marker)
			return
		}
		for _, req := range adm.reqs {
			admit(req)
		}
	}

	// popReady removes the head of the ready list.
	popReady := func() {
		ready[0] = nil
		ready = ready[1:]
		if len(ready) == 0 {
			ready = nil
		}
	}

	for {
		// Block for one event; the hand-off arm is enabled only when
		// the ready list is non-empty (a nil channel disables it).
		var (
			handoff chan *node
			head    *node
		)
		if len(ready) > 0 {
			handoff = s.readyCh
			head = ready[0]
		}
		select {
		case req := <-s.reqCh:
			t0 := time.Now()
			admit(req)
			cpu.Add(time.Since(t0))
		case adm := <-s.batchCh:
			t0 := time.Now()
			admitAdmission(adm)
			cpu.Add(time.Since(t0))
		case n := <-s.doneCh:
			t0 := time.Now()
			release(n)
			cpu.Add(time.Since(t0))
		case handoff <- head:
			t0 := time.Now()
			popReady()
			cpu.Add(time.Since(t0))
		case <-s.stop:
			return
		}
		// Opportunistic drain: handle everything already queued
		// without further blocking. This amortises scheduler wake-ups
		// across bursts — a single-thread scheduler lives or dies by
		// its per-command constant.
		t0 := time.Now()
		for {
			progress := false
			select {
			case req := <-s.reqCh:
				if req != nil {
					admit(req)
					progress = true
				}
			default:
			}
			select {
			case adm := <-s.batchCh:
				admitAdmission(adm)
				progress = true
			default:
			}
			select {
			case n := <-s.doneCh:
				release(n)
				progress = true
			default:
			}
			for len(ready) > 0 {
				pushed := false
				select {
				case s.readyCh <- ready[0]:
					popReady()
					progress = true
					pushed = true
				default:
				}
				if !pushed {
					break
				}
			}
			if !progress {
				break
			}
		}
		cpu.Add(time.Since(t0))
	}
}

// work is one pool worker: execute ready commands, respond, report
// completion.
func (s *Scheduler) work() {
	defer s.wg.Done()
	cpu := s.cfg.CPU.Role("worker")
	for n := range s.readyCh {
		t0 := time.Now()
		if n.marker != nil {
			// Quiesce marker: every command admitted before it has
			// completed (it is a barrier node), so the closure observes
			// the service at one deterministic log position.
			n.marker()
		} else {
			s.cfg.Trace.StampID(obs.StageExecStart, n.req.Client, n.req.Seq)
			n.output = s.exec(n.req)
			s.cfg.Trace.StampID(obs.StageExecEnd, n.req.Client, n.req.Seq)
			s.respond(n.req, n.output)
		}
		cpu.Add(time.Since(t0))
		select {
		case s.doneCh <- n:
		case <-s.stop:
			return
		}
	}
}

func (s *Scheduler) respond(req *command.Request, output []byte) {
	Respond(s.cfg.Transport, req, output)
}

// exec runs one request through the configured execution hook.
func (s *Scheduler) exec(req *command.Request) []byte {
	if s.cfg.Exec != nil {
		return s.cfg.Exec(req)
	}
	return s.cfg.Service.Execute(req.Cmd, req.Input)
}

// Respond sends a command's response frame to the client proxy. Both
// engines and the optimistic executor (which answers at
// order-confirmation time instead of execution time) share it so their
// wire behavior cannot drift apart.
func Respond(tr transport.Transport, req *command.Request, output []byte) {
	if req.Reply == "" {
		return
	}
	frame := command.AppendResponse(nil, &command.Response{
		Client: req.Client,
		Seq:    req.Seq,
		Output: output,
	})
	_ = tr.Send(req.Reply, frame)
}
