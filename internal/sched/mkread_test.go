package sched

// Tests for the multi-key READ-ONLY fast path: snapshot reads over a
// key set compile to a read-only multikey route and latch each key's
// reader set instead of rendezvousing the keys' owner workers, so
// overlapping snapshots run concurrently while writers on any touched
// key still interlock with them.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

func TestMultiKeyReadOnlyRoute(t *testing.T) {
	compiled, err := cdep.Compile(spec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	mr := compiled.Route(cmdMRead)
	if mr.Kind != cdep.RouteMultiKey || !mr.ReadOnly {
		t.Fatalf("mread route = %v readonly=%v, want multikey read-only", mr.Kind, mr.ReadOnly)
	}
	xf := compiled.Route(cmdXfer)
	if xf.Kind != cdep.RouteMultiKey || xf.ReadOnly {
		t.Fatalf("xfer route = %v readonly=%v, want multikey writer", xf.Kind, xf.ReadOnly)
	}
	if compiled.Class(cmdMRead) != cdep.MultiKeyed {
		t.Fatalf("mread class = %v", compiled.Class(cmdMRead))
	}
}

// concurrencyService counts the peak number of overlapping executions.
type concurrencyService struct {
	cur, peak atomic.Int64
	slow      time.Duration
}

func (s *concurrencyService) Execute(command.ID, []byte) []byte {
	c := s.cur.Add(1)
	for {
		p := s.peak.Load()
		if c <= p || s.peak.CompareAndSwap(p, c) {
			break
		}
	}
	time.Sleep(s.slow)
	s.cur.Add(-1)
	return []byte{0}
}

// Overlapping snapshot reads must run concurrently on both engines:
// they share every key they touch, but read-read pairs do not
// conflict, so nothing may serialize them.
func TestMultiKeyReadersRunConcurrently(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			svc := &concurrencyService{slow: 10 * time.Millisecond}
			compiled, err := cdep.Compile(spec(), 4)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			net := transport.NewMemNetwork(1)
			t.Cleanup(func() { _ = net.Close() })
			e, err := StartEngine(Config{Kind: kind, Workers: 4, Service: svc, Compiled: compiled, Transport: net})
			if err != nil {
				t.Fatalf("StartEngine: %v", err)
			}
			t.Cleanup(func() { _ = e.Close() })

			// Four snapshots over the same two keys.
			var reqs []*command.Request
			for i := uint64(1); i <= 4; i++ {
				reqs = append(reqs, &command.Request{Client: i, Seq: 1, Cmd: cmdMRead, Input: input3(1, 2, i)})
			}
			if !e.SubmitBatch(reqs) {
				t.Fatal("SubmitBatch failed")
			}
			deadline := time.Now().Add(5 * time.Second)
			for svc.cur.Load() != 0 || svc.peak.Load() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("timed out waiting for snapshots")
				}
				time.Sleep(time.Millisecond)
			}
			if svc.peak.Load() < 2 {
				t.Fatalf("peak concurrency = %d, want >= 2 (snapshot reads serialized)", svc.peak.Load())
			}
		})
	}
}

// A snapshot read waits for earlier writers of every key it touches,
// and a later writer (or transfer) on any touched key waits for it —
// on both engines, with no conflicting overlap.
func TestMultiKeyReadWriterInterlock(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			compiled, err := cdep.Compile(spec(), 4)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			svc := newTraceSetService(compiled, 2*time.Millisecond)
			net := transport.NewMemNetwork(1)
			t.Cleanup(func() { _ = net.Close() })
			e, err := StartEngine(Config{Kind: kind, Workers: 4, Service: svc, Compiled: compiled, Transport: net})
			if err != nil {
				t.Fatalf("StartEngine: %v", err)
			}
			t.Cleanup(func() { _ = e.Close() })

			reqs := []*command.Request{
				{Client: 1, Seq: 1, Cmd: cmdWrite, Input: input(1, 1)},
				{Client: 1, Seq: 2, Cmd: cmdWrite, Input: input(2, 2)},
				{Client: 2, Seq: 1, Cmd: cmdMRead, Input: input3(1, 2, 50)},
				{Client: 3, Seq: 1, Cmd: cmdMRead, Input: input3(2, 3, 51)},
				{Client: 4, Seq: 1, Cmd: cmdXfer, Input: input3(1, 2, 70)},
				{Client: 5, Seq: 1, Cmd: cmdWrite, Input: input(3, 80)},
			}
			if !e.SubmitBatch(reqs) {
				t.Fatal("SubmitBatch failed")
			}
			waitSetExecuted(t, svc, len(reqs))
			if svc.violation.Load() {
				t.Fatal("conflicting commands overlapped")
			}
			svc.mu.Lock()
			defer svc.mu.Unlock()
			pos := make(map[uint64]int, len(svc.order))
			for i, seq := range svc.order {
				pos[seq] = i
			}
			// Writers before the snapshots, transfer and the key-3 write
			// after them.
			for _, w := range []uint64{1, 2} {
				if pos[w] > pos[50] {
					t.Fatalf("write %d ran after snapshot 50: %v", w, svc.order)
				}
			}
			if pos[2] > pos[51] {
				t.Fatalf("write 2 ran after snapshot 51: %v", svc.order)
			}
			if pos[70] < pos[50] || pos[70] < pos[51] {
				t.Fatalf("transfer ran before a snapshot it conflicts with: %v", svc.order)
			}
			if pos[80] < pos[51] {
				t.Fatalf("write 80 on key 3 ran before snapshot 51: %v", svc.order)
			}
		})
	}
}

// With reader sets disabled the index engine falls back to the owner
// rendezvous for snapshot reads: still correct, just serialized.
func TestMultiKeyReadNoReaderSetsFallback(t *testing.T) {
	compiled, err := cdep.Compile(spec(), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := newTraceSetService(compiled, time.Millisecond)
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	e, err := StartIndex(Config{
		Workers: 4, Service: svc, Compiled: compiled, Transport: net,
		Tuning: Tuning{NoReaderSets: true},
	})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = e.Close() })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 8; i++ {
			e.Submit(&command.Request{Client: i, Seq: 1, Cmd: cmdMRead, Input: input3(1, 2, i)})
		}
	}()
	wg.Wait()
	waitSetExecuted(t, svc, 8)
	if svc.violation.Load() {
		t.Fatal("conflicting commands overlapped")
	}
}
