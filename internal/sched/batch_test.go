package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// startEngine launches either engine over a fresh in-process network.
func startEngine(t *testing.T, kind SchedulerKind, workers int, svc command.Service,
	tuning Tuning, opts ...cdep.Option) (Engine, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	compiled, err := cdep.Compile(spec(), workers, opts...)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
		Tuning:    tuning,
	})
	if err != nil {
		t.Fatalf("StartEngine(%v): %v", kind, err)
	}
	t.Cleanup(func() { _ = e.Close(); _ = net.Close() })
	return e, net
}

// SubmitBatch must admit in order across chunk boundaries and flush
// buffered work before a mid-batch barrier, on both engines.
func TestSubmitBatchOrderAndBarrier(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			compiled, _ := cdep.Compile(spec(), 4)
			svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled}
			e, _ := startEngine(t, kind, 4, svc, Tuning{})

			// One batch: same-key writes, a mid-batch barrier, more
			// writes and pings. Key 7 writes must keep batch order;
			// nothing may cross the barrier (seq 100).
			var reqs []*command.Request
			for i := uint64(1); i <= 20; i++ {
				reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(7, i)})
			}
			reqs = append(reqs, &command.Request{Client: 1, Seq: 100, Cmd: cmdGlobal, Input: input(999, 100)})
			for i := uint64(201); i <= 220; i++ {
				cmd := cmdWrite
				if i%3 == 0 {
					cmd = cmdPing
				}
				reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmd, Input: input(i%5, i)})
			}
			if !e.SubmitBatch(reqs) {
				t.Fatal("SubmitBatch failed")
			}
			waitExecuted(t, svc, len(reqs))
			if svc.violation.Load() {
				t.Fatal("conflicting commands overlapped")
			}
			svc.mu.Lock()
			defer svc.mu.Unlock()
			barrierPos := -1
			key7Prev := uint64(0)
			for i, seq := range svc.order {
				if seq == 100 {
					barrierPos = i
				}
				if seq <= 20 { // key-7 write
					if seq <= key7Prev {
						t.Fatalf("key-7 writes out of order: %v", svc.order)
					}
					key7Prev = seq
				}
			}
			for i, seq := range svc.order {
				if seq < 100 && i > barrierPos {
					t.Fatalf("pre-barrier command %d executed after the barrier", seq)
				}
				if seq > 200 && i < barrierPos {
					t.Fatalf("post-barrier command %d executed before the barrier", seq)
				}
			}
		})
	}
}

// Reader sets: same-key reads from distinct clients must execute
// concurrently on the index engine (the scan engine's behavior), and
// a writer admitted after them must wait for the whole reader set.
func TestIndexReaderSetsRunConcurrently(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 8)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 5 * time.Millisecond}
	e, _ := startEngine(t, KindIndex, 8, svc, Tuning{})

	start := time.Now()
	for i := uint64(1); i <= 8; i++ {
		e.Submit(&command.Request{Client: i, Seq: 1, Cmd: cmdRead, Input: input(5, i)})
	}
	waitExecuted(t, svc, 8)
	// 8 x 5ms serialized would be 40ms; concurrent readers park
	// together and finish in ~5-10ms even on one CPU.
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Fatalf("same-key reads apparently serialized: %v", elapsed)
	}
	if svc.violation.Load() {
		t.Fatal("conflict violation")
	}

	// A writer behind the reader set, then a read behind the writer:
	// strict admission-order semantics per key.
	e.Submit(&command.Request{Client: 100, Seq: 1, Cmd: cmdWrite, Input: input(5, 50)})
	e.Submit(&command.Request{Client: 101, Seq: 1, Cmd: cmdRead, Input: input(5, 51)})
	waitExecuted(t, svc, 10)
	if svc.violation.Load() {
		t.Fatal("writer overlapped the reader set")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	if svc.order[8] != 50 || svc.order[9] != 51 {
		t.Fatalf("tail order = %v, want [... 50 51]", svc.order[8:])
	}
}

// The NoReaderSets ablation must serialize same-key reads on one FIFO
// (the pre-reader-set behavior).
func TestIndexNoReaderSetsSerializesReads(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 8)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 5 * time.Millisecond}
	e, _ := startEngine(t, KindIndex, 8, svc, Tuning{NoReaderSets: true})

	start := time.Now()
	for i := uint64(1); i <= 8; i++ {
		e.Submit(&command.Request{Client: i, Seq: 1, Cmd: cmdRead, Input: input(5, i)})
	}
	waitExecuted(t, svc, 8)
	// Serialized on one FIFO, the 8 sleeps cannot finish faster than
	// ~8 x 5ms; waitExecuted returns at the START of the last one.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("NoReaderSets reads ran concurrently: %v", elapsed)
	}
}

// Work stealing: free commands confined to one worker's queue by a
// restricted worker set must be picked up by the idle workers.
func TestIndexWorkStealing(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4, cdep.WithWorkerSet(cmdPing, 0))
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 5 * time.Millisecond}
	e, _ := startEngine(t, KindIndex, 4, svc, Tuning{StealBatch: 2}, cdep.WithWorkerSet(cmdPing, 0))

	start := time.Now()
	const n = 16
	var reqs []*command.Request
	for i := uint64(1); i <= n; i++ {
		reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmdPing, Input: input(1000+i, i)})
	}
	if !e.SubmitBatch(reqs) {
		t.Fatal("SubmitBatch failed")
	}
	waitExecuted(t, svc, n)
	// 16 x 5ms on the single routed worker would be 80ms; stealing
	// spreads the backlog over 4 workers (sleeps park, 1 CPU is
	// enough).
	if elapsed := time.Since(start); elapsed > 70*time.Millisecond {
		t.Fatalf("idle workers did not steal: %v", elapsed)
	}
	if svc.violation.Load() {
		t.Fatal("conflict violation")
	}
}

// Stolen work must not cross a barrier: frees admitted after a global
// command stay behind it even when another worker is idle enough to
// steal.
func TestIndexStealRespectsBarrier(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4, cdep.WithWorkerSet(cmdPing, 0))
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: time.Millisecond}
	e, _ := startEngine(t, KindIndex, 4, svc, Tuning{StealBatch: 4}, cdep.WithWorkerSet(cmdPing, 0))

	var reqs []*command.Request
	for i := uint64(1); i <= 10; i++ {
		reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmdPing, Input: input(1000+i, i)})
	}
	reqs = append(reqs, &command.Request{Client: 1, Seq: 100, Cmd: cmdGlobal, Input: input(999, 100)})
	for i := uint64(201); i <= 210; i++ {
		reqs = append(reqs, &command.Request{Client: 1, Seq: i, Cmd: cmdPing, Input: input(2000+i, i)})
	}
	if !e.SubmitBatch(reqs) {
		t.Fatal("SubmitBatch failed")
	}
	waitExecuted(t, svc, 21)
	if svc.violation.Load() {
		t.Fatal("a stolen command overlapped the barrier")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	barrierPos := -1
	for i, seq := range svc.order {
		if seq == 100 {
			barrierPos = i
		}
	}
	for i, seq := range svc.order {
		if seq < 100 && i > barrierPos {
			t.Fatalf("pre-barrier ping %d executed after the barrier", seq)
		}
		if seq > 200 && i < barrierPos {
			t.Fatalf("post-barrier ping %d executed before the barrier", seq)
		}
	}
}

// Barriers under sustained concurrent keyed load, both engines, with
// batched admission, reader sets and stealing all active: no conflict
// may overlap and every barrier must partition the stream.
func TestBarrierUnderConcurrentKeyedLoad(t *testing.T) {
	for _, kind := range []SchedulerKind{KindScan, KindIndex} {
		t.Run(kind.String(), func(t *testing.T) {
			compiled, _ := cdep.Compile(spec(), 8)
			svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled}
			e, _ := startEngine(t, kind, 8, svc, Tuning{})

			const n = 8000
			var reqs []*command.Request
			for i := uint64(1); i <= n; i++ {
				cmd := cmdWrite
				switch {
				case i%251 == 0:
					cmd = cmdGlobal
				case i%3 == 0:
					cmd = cmdRead
				case i%11 == 0:
					cmd = cmdPing
				}
				reqs = append(reqs, &command.Request{
					Client: i % 16, Seq: i, Cmd: cmd, Input: input(i%13, i),
				})
				if len(reqs) == 100 {
					if !e.SubmitBatch(reqs) {
						t.Fatal("SubmitBatch failed")
					}
					reqs = nil
				}
			}
			if len(reqs) > 0 && !e.SubmitBatch(reqs) {
				t.Fatal("SubmitBatch failed")
			}
			waitExecuted(t, svc, n)
			if svc.violation.Load() {
				t.Fatal("conflict violation under load")
			}
			// Every global must partition the execution order: all
			// smaller seqs before it, all larger after (globals
			// conflict with everything here except nothing admitted
			// later... they are full barriers).
			svc.mu.Lock()
			defer svc.mu.Unlock()
			pos := make(map[uint64]int, len(svc.order))
			for i, seq := range svc.order {
				pos[seq] = i
			}
			for seq := uint64(251); seq <= n; seq += 251 {
				bp := pos[seq]
				for other, p := range pos {
					if other < seq && p > bp {
						t.Fatalf("seq %d executed after barrier %d", other, seq)
					}
					if other > seq && p < bp {
						t.Fatalf("seq %d executed before barrier %d", other, seq)
					}
				}
			}
		})
	}
}

// kvService is a deterministic toy store for the determinism test:
// writes set key -> seq and return the previous value, reads return
// the current value, pings echo, globals fold the whole store. The
// mutex only guards the map; ordering is the engine's job, and any
// ordering difference shows up in the outputs.
type kvService struct {
	mu    sync.Mutex
	state map[uint64]uint64
}

func (s *kvService) Execute(cmd command.ID, in []byte) []byte {
	k, _ := key(in)
	seq := uint64(0)
	if len(in) >= 16 {
		seq = uint64(in[8]) | uint64(in[9])<<8 | uint64(in[10])<<16 | uint64(in[11])<<24 |
			uint64(in[12])<<32 | uint64(in[13])<<40 | uint64(in[14])<<48 | uint64(in[15])<<56
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case cmdWrite:
		prev := s.state[k]
		s.state[k] = seq
		return []byte(fmt.Sprintf("w%d", prev))
	case cmdRead:
		return []byte(fmt.Sprintf("r%d", s.state[k]))
	case cmdPing:
		return []byte(fmt.Sprintf("p%d", seq))
	default: // global: fold the store
		var sum uint64
		for k2, v := range s.state {
			sum += k2 ^ v
		}
		return []byte(fmt.Sprintf("g%d", sum))
	}
}

// The acceptance bar for the refactor: with reader sets and stealing
// enabled and batched admission on the index engine, both engines must
// produce identical outputs for the same ordered input stream.
func TestEnginesProduceIdenticalOutputs(t *testing.T) {
	const (
		n       = 4000
		workers = 8
	)
	type reqID struct{ client, seq uint64 }
	run := func(t *testing.T, kind SchedulerKind, batch int) map[reqID]string {
		net := transport.NewMemNetwork(1)
		t.Cleanup(func() { _ = net.Close() })
		compiled, err := cdep.Compile(spec(), workers)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		e, err := StartEngine(Config{
			Kind: kind, Workers: workers, Service: &kvService{state: make(map[uint64]uint64)},
			Compiled: compiled, Transport: net,
		})
		if err != nil {
			t.Fatalf("StartEngine: %v", err)
		}
		t.Cleanup(func() { _ = e.Close() })
		reply, err := net.Listen(transport.Addr("probe/" + kind.String()))
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}

		reqs := make([]*command.Request, 0, n)
		for i := uint64(1); i <= n; i++ {
			cmd := cmdWrite
			switch {
			case i%97 == 0:
				cmd = cmdGlobal
			case i%3 == 0:
				cmd = cmdRead
			case i%7 == 0:
				cmd = cmdPing
			}
			reqs = append(reqs, &command.Request{
				Client: 1 + i%32, Seq: i, Cmd: cmd, Input: input(i%9, i),
				Reply: reply.Addr(),
			})
		}
		for i := 0; i < len(reqs); i += batch {
			end := min(i+batch, len(reqs))
			if batch == 1 {
				if !e.Submit(reqs[i]) {
					t.Fatal("Submit failed")
				}
			} else if !e.SubmitBatch(reqs[i:end]) {
				t.Fatal("SubmitBatch failed")
			}
		}
		out := make(map[reqID]string, n)
		deadline := time.After(20 * time.Second)
		for len(out) < n {
			select {
			case frame := <-reply.Recv():
				resp, err := command.DecodeResponse(frame)
				if err != nil {
					t.Fatalf("DecodeResponse: %v", err)
				}
				out[reqID{resp.Client, resp.Seq}] = string(resp.Output)
			case <-deadline:
				t.Fatalf("timed out with %d/%d responses", len(out), n)
			}
		}
		return out
	}

	scan := run(t, KindScan, 1)
	index := run(t, KindIndex, 53)
	for id, want := range scan {
		if got := index[id]; got != want {
			t.Fatalf("output mismatch for client %d seq %d: scan %q, index %q",
				id.client, id.seq, want, got)
		}
	}
}

// leastLoaded must break ties deterministically (lowest worker id) so
// placement is reproducible across runs, and fall back to the full
// worker range when the compiled set lies outside it.
func TestLeastLoadedDeterministicTieBreak(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	compiled, _ := cdep.Compile(spec(), 4)
	s, err := StartIndex(Config{Workers: 4, Service: &kvService{state: map[uint64]uint64{}},
		Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	if got := s.leastLoaded(0); got != 0 {
		t.Fatalf("all-idle full set: leastLoaded = %d, want 0", got)
	}
	if got := s.leastLoaded(command.GammaOf(2, 3)); got != 2 {
		t.Fatalf("all-idle {2,3}: leastLoaded = %d, want 2", got)
	}
	s.queues[2].load.Add(1)
	if got := s.leastLoaded(command.GammaOf(2, 3)); got != 3 {
		t.Fatalf("loaded(2) {2,3}: leastLoaded = %d, want 3", got)
	}
	s.queues[3].load.Add(1)
	if got := s.leastLoaded(command.GammaOf(2, 3)); got != 2 {
		t.Fatalf("tied {2,3}: leastLoaded = %d, want lowest id 2", got)
	}
	// A compiled set entirely outside the worker range falls back to
	// scanning every queue.
	if got := s.leastLoaded(command.GammaOf(63)); got != 0 {
		t.Fatalf("out-of-range set: leastLoaded = %d, want 0", got)
	}
	// Repeatability: same state, same answer.
	for i := 0; i < 100; i++ {
		if got := s.leastLoaded(command.GammaOf(0, 1)); got != 0 {
			t.Fatalf("tie-break not stable: got %d on iteration %d", got, i)
		}
	}
}
