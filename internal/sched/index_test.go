package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

func startIndexSched(t *testing.T, workers int, svc command.Service) (*IndexScheduler, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s, err := StartIndex(Config{
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })
	return s, net
}

func TestStartEngineDispatch(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, _ := cdep.Compile(spec(), 2)
	base := Config{Workers: 2, Service: countingService{&atomic.Int64{}}, Compiled: compiled, Transport: net}

	scanCfg := base
	scanCfg.Kind = KindScan
	e, err := StartEngine(scanCfg)
	if err != nil {
		t.Fatalf("StartEngine(scan): %v", err)
	}
	if _, ok := e.(*Scheduler); !ok {
		t.Fatalf("scan engine is %T", e)
	}
	_ = e.Close()

	idxCfg := base
	idxCfg.Kind = KindIndex
	e, err = StartEngine(idxCfg)
	if err != nil {
		t.Fatalf("StartEngine(index): %v", err)
	}
	if _, ok := e.(*IndexScheduler); !ok {
		t.Fatalf("index engine is %T", e)
	}
	_ = e.Close()

	badCfg := base
	badCfg.Kind = SchedulerKind(99)
	if _, err := StartEngine(badCfg); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestIndexIndependentKeysRunConcurrently(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 5 * time.Millisecond}
	s, _ := startIndexSched(t, 4, svc)

	start := time.Now()
	const n = 16
	for i := uint64(0); i < n; i++ {
		if !s.Submit(&command.Request{Client: 1, Seq: i + 1, Cmd: cmdWrite, Input: input(i, i+1)}) {
			t.Fatal("Submit failed")
		}
	}
	waitExecuted(t, svc, n)
	elapsed := time.Since(start)
	// 16 × 5ms serially = 80ms; 4 per-worker queues should finish in
	// ~20-40ms (the sleeps park, so 1 CPU suffices).
	if elapsed > 70*time.Millisecond {
		t.Fatalf("distinct-key commands apparently serialized: %v", elapsed)
	}
	if svc.violation.Load() {
		t.Fatal("conflicting commands overlapped")
	}
}

func TestIndexSameKeySerializedInOrder(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: time.Millisecond}
	s, _ := startIndexSched(t, 4, svc)

	const n = 30
	for i := uint64(0); i < n; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i + 1, Cmd: cmdWrite, Input: input(7, i+1)})
	}
	waitExecuted(t, svc, n)
	if svc.violation.Load() {
		t.Fatal("same-key writes overlapped")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for i := 0; i < n; i++ {
		if svc.order[i] != uint64(i+1) {
			t.Fatalf("order[%d] = %d, want %d (submission order)", i, svc.order[i], i+1)
		}
	}
}

func TestIndexGlobalCommandIsBarrier(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 2 * time.Millisecond}
	s, _ := startIndexSched(t, 4, svc)

	for i := uint64(1); i <= 8; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(i, i)})
	}
	s.Submit(&command.Request{Client: 1, Seq: 100, Cmd: cmdGlobal, Input: input(999, 100)})
	for i := uint64(201); i <= 208; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(i, i)})
	}
	waitExecuted(t, svc, 17)
	if svc.violation.Load() {
		t.Fatal("global command overlapped another command")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	var globalPos int
	for i, seq := range svc.order {
		if seq == 100 {
			globalPos = i
		}
	}
	for i, seq := range svc.order {
		if seq < 100 && i > globalPos {
			t.Fatalf("pre-barrier command %d executed after the barrier", seq)
		}
		if seq > 200 && i < globalPos {
			t.Fatalf("post-barrier command %d executed before the barrier", seq)
		}
	}
}

// A keyed command whose invocation carries no key may touch any object
// and must serialize like a global command — not sneak past the index.
func TestIndexKeylessKeyedCommandIsBarrier(t *testing.T) {
	var count atomic.Int64
	s, net := startIndexSched(t, 4, countingService{&count})

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// Short input: the key extractor reports no key.
	if !s.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdWrite, Input: []byte{1}, Reply: "probe"}) {
		t.Fatal("Submit failed")
	}
	recvFrame(t, reply)
	if got := count.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

func TestIndexDedupAnswersFromCache(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	var count atomic.Int64
	compiled, _ := cdep.Compile(spec(), 2)
	s, err := StartIndex(Config{Workers: 2, Service: countingService{&count}, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	req := &command.Request{Client: 9, Seq: 1, Cmd: cmdWrite, Input: input(1, 1), Reply: "probe"}
	s.Submit(req)
	recvFrame(t, reply)
	s.Submit(req)
	recvFrame(t, reply)
	if got := count.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

func TestIndexInFlightDuplicatesDropped(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	var count atomic.Int64
	gate := make(chan struct{})
	compiled, _ := cdep.Compile(spec(), 1)
	s, err := StartIndex(Config{Workers: 1, Service: gatedService{n: &count, gate: gate}, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	req := &command.Request{Client: 5, Seq: 1, Cmd: cmdWrite, Input: input(1, 1), Reply: "probe"}
	s.Submit(req)
	for i := 0; i < 50; i++ {
		s.Submit(req)
	}
	close(gate)
	recvFrame(t, reply)
	s.Submit(req)
	recvFrame(t, reply)
	if got := count.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (duplicates must not queue)", got)
	}
}

func TestIndexSubmitAfterClose(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 1)
	net := transport.NewMemNetwork(1)
	defer net.Close()
	s, err := StartIndex(Config{Workers: 1, Service: countingService{&atomic.Int64{}}, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	_ = s.Close()
	if s.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdRead, Input: input(1, 1)}) {
		t.Fatal("Submit succeeded after Close")
	}
}

func TestIndexConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := StartIndex(Config{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := StartIndex(Config{Workers: 1, Transport: net}); err == nil {
		t.Fatal("missing Compiled accepted")
	}
}

func TestIndexHighThroughputMixedLoad(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 8)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled}
	s, _ := startIndexSched(t, 8, svc)

	const n = 20000
	for i := uint64(1); i <= n; i++ {
		cmd := cmdWrite
		switch {
		case i%97 == 0:
			cmd = cmdGlobal
		case i%3 == 0:
			cmd = cmdRead
		}
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmd, Input: input(i%64, i)})
	}
	waitExecuted(t, svc, n)
	if svc.violation.Load() {
		t.Fatal("conflict violation under load")
	}
}

// Placement pins must override least-loaded assignment for idle keys:
// two distinct keys pinned to the same worker serialize on its queue
// even while the other worker idles.
func TestIndexPlacementPinHonored(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	compiled, err := cdep.Compile(spec(), 2, cdep.WithPlacement(map[uint64]int{100: 0, 200: 0}))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 30 * time.Millisecond}
	s, err := StartIndex(Config{Workers: 2, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("StartIndex: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	start := time.Now()
	s.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdWrite, Input: input(100, 1)})
	s.Submit(&command.Request{Client: 1, Seq: 2, Cmd: cmdWrite, Input: input(200, 2)})
	// waitExecuted returns once both commands have STARTED (the trace
	// records at entry): concurrent starts arrive within ~1ms, while
	// the shared pin delays the second start by the first's full 30ms
	// execution.
	waitExecuted(t, svc, 2)
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("pinned keys ran concurrently: second start after %v", elapsed)
	}
}

// Single-worker degeneration: barriers rendezvous with nobody and the
// whole stream serializes on one queue.
func TestIndexSingleWorker(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 1)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled}
	s, _ := startIndexSched(t, 1, svc)

	const n = 100
	for i := uint64(1); i <= n; i++ {
		cmd := cmdWrite
		if i%10 == 0 {
			cmd = cmdGlobal
		}
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmd, Input: input(i%4, i)})
	}
	waitExecuted(t, svc, n)
	if svc.violation.Load() {
		t.Fatal("conflict violation")
	}
}
