package sched

import (
	"encoding/binary"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// doneService counts executions so the benchmark can wait for the
// engine to drain without a response round-trip.
type doneService struct{ n atomic.Int64 }

func (d *doneService) Execute(command.ID, []byte) []byte {
	d.n.Add(1)
	return nil
}

// benchEngine measures the end-to-end engine constant — admission,
// conflict resolution, hand-off, completion — with a free service, so
// the scheduling machinery itself is the measured cost. This is the
// per-command overhead that saturates the scan scheduler's core in the
// paper's Figures 3/5/7 and that the index engine's O(1) routing
// attacks.
func benchEngine(b *testing.B, kind SchedulerKind, workers int) {
	b.Helper()
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &doneService{}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		// Distinct clients sidestep the per-client dedup window; keys
		// cycle over a working set larger than the worker count.
		if !e.Submit(&command.Request{
			Client: seq % 256, Seq: seq, Cmd: cmdWrite, Input: input(seq%1024, seq),
		}) {
			b.Fatal("Submit failed")
		}
	}
	for svc.n.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

func BenchmarkEngineKeyedScan(b *testing.B)  { benchEngine(b, KindScan, 8) }
func BenchmarkEngineKeyedIndex(b *testing.B) { benchEngine(b, KindIndex, 8) }

// benchEngineBatch is benchEngine with batched admission: the same
// keyed workload handed down in SubmitBatch bursts, measuring how much
// of the per-command engine constant the shard-lock and ingress-lock
// amortisation removes.
func benchEngineBatch(b *testing.B, kind SchedulerKind, workers, batch int) {
	b.Helper()
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &doneService{}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	b.ResetTimer()
	for submitted := 0; submitted < b.N; {
		// Build each burst inside the timed loop, mirroring the
		// per-command benchmark's request-construction cost.
		chunk := min(batch, b.N-submitted)
		reqs := make([]*command.Request, chunk)
		for j := range reqs {
			seq := uint64(submitted + j + 1)
			reqs[j] = &command.Request{
				Client: seq % 256, Seq: seq, Cmd: cmdWrite, Input: input(seq%1024, seq),
			}
		}
		if !e.SubmitBatch(reqs) {
			b.Fatal("SubmitBatch failed")
		}
		submitted += chunk
	}
	for svc.n.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

func BenchmarkEngineKeyedScanBatch(b *testing.B)  { benchEngineBatch(b, KindScan, 8, 64) }
func BenchmarkEngineKeyedIndexBatch(b *testing.B) { benchEngineBatch(b, KindIndex, 8, 64) }

// benchAdmitKeyed drives the keyed admission path at steady state:
// bursts of pre-built requests are admitted and fully drained before
// the next burst begins, so the engine's pooled admission objects —
// inodes, key entries, ingress rings, at-most-once tables — recycle
// instead of accumulating, and the allocation meter reports the
// steady-state cost per command (asserted zero for the batched index
// path by TestAdmitKeyedIndexBatchZeroAlloc) rather than warm-up
// growth. The drain spin is timed: at steady state admission and drain
// overlap on the worker pool, keeping per-op time comparable with the
// end-to-end engine benchmarks above.
func benchAdmitKeyed(b *testing.B, kind SchedulerKind, workers, batch int) {
	b.Helper()
	const burstLen = 64
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &doneService{}
	e, err := StartEngine(Config{
		Kind:        kind,
		Workers:     workers,
		Service:     svc,
		Compiled:    compiled,
		Transport:   net,
		DedupWindow: burstLen, // bound the at-most-once tables' footprint
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	// Requests are pre-built and mutated in place between fully-drained
	// bursts: the engines hold them only until execution, which the
	// drain spin waits out. The scan engine takes ownership of each
	// SubmitBatch slice, so it gets a fresh header per burst; the index
	// engine does not retain the slice.
	reqs := make([]*command.Request, burstLen)
	for j := range reqs {
		reqs[j] = &command.Request{Cmd: cmdWrite, Input: make([]byte, 16)}
	}
	var done, seq int64
	burst := func() {
		for j := range reqs {
			seq++
			r := reqs[j]
			r.Client = uint64(seq % 16)
			r.Seq = uint64(seq)
			binary.LittleEndian.PutUint64(r.Input, uint64(seq)%1024)
			binary.LittleEndian.PutUint64(r.Input[8:], uint64(seq))
		}
		if batch == 1 {
			for _, r := range reqs {
				if !e.Submit(r) {
					b.Fatal("Submit failed")
				}
			}
		} else {
			bs := reqs
			if kind == KindScan {
				bs = append([]*command.Request(nil), reqs...)
			}
			if !e.SubmitBatch(bs) {
				b.Fatal("SubmitBatch failed")
			}
		}
		done += burstLen
		for svc.n.Load() < done {
			runtime.Gosched()
		}
	}
	// Warm-up: grow the pools, the rings and the dedup tables to their
	// steady-state footprint before the meter starts.
	for i := 0; i < 64; i++ {
		burst()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; submitted += burstLen {
		burst()
	}
	b.StopTimer()
}

func BenchmarkAdmitKeyedScan(b *testing.B)       { benchAdmitKeyed(b, KindScan, 8, 1) }
func BenchmarkAdmitKeyedScanBatch(b *testing.B)  { benchAdmitKeyed(b, KindScan, 8, 64) }
func BenchmarkAdmitKeyedIndex(b *testing.B)      { benchAdmitKeyed(b, KindIndex, 8, 1) }
func BenchmarkAdmitKeyedIndexBatch(b *testing.B) { benchAdmitKeyed(b, KindIndex, 8, 64) }

// sleepService parks for a fixed duration per command, so hot-key
// benchmarks measure scheduling concurrency (parked sleeps overlap
// even on one core) rather than raw CPU.
type sleepService struct {
	n atomic.Int64
	d time.Duration
}

func (s *sleepService) Execute(command.ID, []byte) []byte {
	time.Sleep(s.d)
	s.n.Add(1)
	return nil
}

// benchHotKeyRead hammers one key with read-only commands from
// distinct clients. The scan engine and the index engine with reader
// sets run them concurrently (ns/op ~ sleep/workers); the index engine
// without reader sets serializes them on one FIFO (ns/op ~ sleep).
func benchHotKeyRead(b *testing.B, kind SchedulerKind, workers int, tuning Tuning) {
	b.Helper()
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &sleepService{d: 20 * time.Microsecond}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
		Tuning:    tuning,
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		if !e.Submit(&command.Request{
			Client: seq % 256, Seq: seq, Cmd: cmdRead, Input: input(5, seq),
		}) {
			b.Fatal("Submit failed")
		}
	}
	for svc.n.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

func BenchmarkHotKeyReadScan(b *testing.B)  { benchHotKeyRead(b, KindScan, 8, Tuning{}) }
func BenchmarkHotKeyReadIndex(b *testing.B) { benchHotKeyRead(b, KindIndex, 8, Tuning{}) }
func BenchmarkHotKeyReadIndexNoRS(b *testing.B) {
	benchHotKeyRead(b, KindIndex, 8, Tuning{NoReaderSets: true})
}

// barrierXferSpec is the multi-key ablation baseline: the same command
// set, but the transfer declared always-conflicting, so it compiles to
// a Global class and routes as a full barrier — exactly what a C-G
// keyed by single objects forces on every multi-object command.
func barrierXferSpec() cdep.Spec {
	s := spec()
	s.Deps = append(s.Deps, cdep.Dep{A: cmdXfer, B: cmdXfer})
	return s
}

// benchMultiKey measures the end-to-end engine constant of two-key
// transfer commands: under spec() they route as RouteMultiKey (owner
// rendezvous over ≤2 workers), under barrierXferSpec() each one is an
// all-worker barrier. The gap is what key-set C-Dep buys multi-object
// commands on the keyed admission path.
func benchMultiKey(b *testing.B, kind SchedulerKind, workers int, sp cdep.Spec) {
	b.Helper()
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(sp, workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &doneService{}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		in := make([]byte, 24)
		binary.LittleEndian.PutUint64(in, seq%1024)
		binary.LittleEndian.PutUint64(in[8:], (seq*7+3)%1024)
		binary.LittleEndian.PutUint64(in[16:], seq)
		if !e.Submit(&command.Request{
			Client: seq % 256, Seq: seq, Cmd: cmdXfer, Input: in,
		}) {
			b.Fatal("Submit failed")
		}
	}
	for svc.n.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

func BenchmarkMultiKeyScan(b *testing.B)  { benchMultiKey(b, KindScan, 8, spec()) }
func BenchmarkMultiKeyIndex(b *testing.B) { benchMultiKey(b, KindIndex, 8, spec()) }
func BenchmarkMultiKeyBarrierScan(b *testing.B) {
	benchMultiKey(b, KindScan, 8, barrierXferSpec())
}
func BenchmarkMultiKeyBarrierIndex(b *testing.B) {
	benchMultiKey(b, KindIndex, 8, barrierXferSpec())
}
