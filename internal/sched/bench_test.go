package sched

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// doneService counts executions so the benchmark can wait for the
// engine to drain without a response round-trip.
type doneService struct{ n atomic.Int64 }

func (d *doneService) Execute(command.ID, []byte) []byte {
	d.n.Add(1)
	return nil
}

// benchEngine measures the end-to-end engine constant — admission,
// conflict resolution, hand-off, completion — with a free service, so
// the scheduling machinery itself is the measured cost. This is the
// per-command overhead that saturates the scan scheduler's core in the
// paper's Figures 3/5/7 and that the index engine's O(1) routing
// attacks.
func benchEngine(b *testing.B, kind SchedulerKind, workers int) {
	b.Helper()
	net := transport.NewMemNetwork(1)
	defer net.Close()
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	svc := &doneService{}
	e, err := StartEngine(Config{
		Kind:      kind,
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		b.Fatalf("StartEngine: %v", err)
	}
	defer e.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		// Distinct clients sidestep the per-client dedup window; keys
		// cycle over a working set larger than the worker count.
		if !e.Submit(&command.Request{
			Client: seq % 256, Seq: seq, Cmd: cmdWrite, Input: input(seq%1024, seq),
		}) {
			b.Fatal("Submit failed")
		}
	}
	for svc.n.Load() < int64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
}

func BenchmarkEngineKeyedScan(b *testing.B)  { benchEngine(b, KindScan, 8) }
func BenchmarkEngineKeyedIndex(b *testing.B) { benchEngine(b, KindIndex, 8) }
