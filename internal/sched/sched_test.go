package sched

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/transport"
)

// Test command set: keyed writes/reads, a global command, an
// independent (free-routed) ping, a two-key transfer, and a read-only
// two-key snapshot read.
const (
	cmdWrite command.ID = iota + 1
	cmdRead
	cmdGlobal
	cmdPing
	cmdXfer
	cmdMRead
)

func key(input []byte) (uint64, bool) {
	if len(input) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(input), true
}

// xferKeys reads the two keys of a transfer input ([k1][k2][seq]).
func xferKeys(input []byte) ([]uint64, bool) {
	if len(input) < 16 {
		return nil, false
	}
	return []uint64{
		binary.LittleEndian.Uint64(input),
		binary.LittleEndian.Uint64(input[8:16]),
	}, true
}

func spec() cdep.Spec {
	return cdep.Spec{
		Commands: []cdep.Command{
			{ID: cmdWrite, Name: "write", Key: key},
			{ID: cmdRead, Name: "read", Key: key},
			{ID: cmdGlobal, Name: "global"},
			{ID: cmdPing, Name: "ping"},
			{ID: cmdXfer, Name: "xfer", KeySet: xferKeys},
			{ID: cmdMRead, Name: "mread", KeySet: xferKeys},
		},
		Deps: []cdep.Dep{
			{A: cmdWrite, B: cmdWrite, SameKey: true},
			{A: cmdWrite, B: cmdRead, SameKey: true},
			{A: cmdXfer, B: cmdXfer, SameKey: true},
			{A: cmdXfer, B: cmdWrite, SameKey: true},
			{A: cmdXfer, B: cmdRead, SameKey: true},
			// The snapshot read conflicts with same-key writers only (no
			// self-dep, no dep on cmdRead): compiled READ-ONLY multikey.
			{A: cmdMRead, B: cmdWrite, SameKey: true},
			{A: cmdMRead, B: cmdXfer, SameKey: true},
			{A: cmdGlobal, B: cmdGlobal}, {A: cmdGlobal, B: cmdWrite},
			{A: cmdGlobal, B: cmdRead}, {A: cmdGlobal, B: cmdPing},
			{A: cmdGlobal, B: cmdXfer}, {A: cmdGlobal, B: cmdMRead},
		},
	}
}

// traceService records execution order and checks mutual exclusion of
// conflicting commands.
type traceService struct {
	mu        sync.Mutex
	order     []uint64 // seq of executed commands
	inFlight  map[uint64]command.ID
	conflicts *cdep.Compiled
	violation atomic.Bool
	slow      time.Duration
}

func (s *traceService) Execute(cmd command.ID, input []byte) []byte {
	seq := binary.LittleEndian.Uint64(input[8:16])
	s.mu.Lock()
	for otherKey, otherCmd := range s.inFlight {
		otherInput := binary.LittleEndian.AppendUint64(nil, otherKey)
		if s.conflicts.Conflicts(cmd, input, otherCmd, otherInput) {
			s.violation.Store(true)
		}
	}
	k, _ := key(input)
	s.inFlight[k] = cmd
	s.order = append(s.order, seq)
	s.mu.Unlock()

	if s.slow > 0 {
		time.Sleep(s.slow)
	}

	s.mu.Lock()
	delete(s.inFlight, k)
	s.mu.Unlock()
	return []byte{0}
}

func input(k, seq uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, k)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	return buf
}

func startSched(t *testing.T, workers int, svc command.Service) (*Scheduler, *transport.MemNetwork) {
	t.Helper()
	net := transport.NewMemNetwork(1)
	compiled, err := cdep.Compile(spec(), workers)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	s, err := Start(Config{
		Workers:   workers,
		Service:   svc,
		Compiled:  compiled,
		Transport: net,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close(); _ = net.Close() })
	return s, net
}

func waitExecuted(t *testing.T, svc *traceService, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		svc.mu.Lock()
		got := len(svc.order)
		svc.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d executions", n)
}

func TestIndependentCommandsRunConcurrently(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 5 * time.Millisecond}
	s, _ := startSched(t, 4, svc)

	start := time.Now()
	const n = 16
	for i := uint64(0); i < n; i++ {
		if !s.Submit(&command.Request{Client: 1, Seq: i + 1, Cmd: cmdWrite, Input: input(i, i+1)}) {
			t.Fatal("Submit failed")
		}
	}
	waitExecuted(t, svc, n)
	elapsed := time.Since(start)
	// 16 × 5ms serially = 80ms; 4 workers should finish in ~20-40ms.
	if elapsed > 70*time.Millisecond {
		t.Fatalf("independent commands apparently serialized: %v", elapsed)
	}
	if svc.violation.Load() {
		t.Fatal("conflicting commands overlapped")
	}
}

func TestConflictingCommandsSerialized(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: time.Millisecond}
	s, _ := startSched(t, 4, svc)

	// All writes to the same key: must execute in submission order.
	const n = 30
	for i := uint64(0); i < n; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i + 1, Cmd: cmdWrite, Input: input(7, i+1)})
	}
	waitExecuted(t, svc, n)
	if svc.violation.Load() {
		t.Fatal("same-key writes overlapped")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	for i := 0; i < n; i++ {
		if svc.order[i] != uint64(i+1) {
			t.Fatalf("order[%d] = %d, want %d (submission order)", i, svc.order[i], i+1)
		}
	}
}

func TestGlobalCommandIsBarrier(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 4)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 2 * time.Millisecond}
	s, _ := startSched(t, 4, svc)

	// Independent writes, then a global, then more writes: the global
	// must execute after all of the first batch and before all of the
	// second (its seq is 100).
	for i := uint64(1); i <= 8; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(i, i)})
	}
	s.Submit(&command.Request{Client: 1, Seq: 100, Cmd: cmdGlobal, Input: input(999, 100)})
	for i := uint64(201); i <= 208; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdWrite, Input: input(i, i)})
	}
	waitExecuted(t, svc, 17)
	if svc.violation.Load() {
		t.Fatal("global command overlapped another command")
	}
	svc.mu.Lock()
	defer svc.mu.Unlock()
	var globalPos int
	for i, seq := range svc.order {
		if seq == 100 {
			globalPos = i
		}
	}
	for i, seq := range svc.order {
		if seq < 100 && i > globalPos {
			t.Fatalf("pre-barrier command %d executed after the barrier", seq)
		}
		if seq > 200 && i < globalPos {
			t.Fatalf("post-barrier command %d executed before the barrier", seq)
		}
	}
}

func TestReadersShareWritersExclude(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 8)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled, slow: 3 * time.Millisecond}
	s, _ := startSched(t, 8, svc)

	// 8 reads of the same key may all run concurrently (reads don't
	// self-conflict); with 8 workers and 3ms each this finishes fast.
	start := time.Now()
	for i := uint64(1); i <= 8; i++ {
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmdRead, Input: input(5, i)})
	}
	waitExecuted(t, svc, 8)
	if elapsed := time.Since(start); elapsed > 18*time.Millisecond {
		t.Fatalf("same-key reads apparently serialized: %v", elapsed)
	}
	if svc.violation.Load() {
		t.Fatal("conflict violation")
	}
}

func TestDedupAnswersFromCache(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	var count atomic.Int64
	svc := countingService{&count}
	compiled, _ := cdep.Compile(spec(), 2)
	s, err := Start(Config{Workers: 2, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	req := &command.Request{Client: 9, Seq: 1, Cmd: cmdWrite, Input: input(1, 1), Reply: "probe"}
	s.Submit(req)
	recvFrame(t, reply)
	// Retransmission: must reply again without re-executing.
	s.Submit(req)
	recvFrame(t, reply)
	if got := count.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

type countingService struct{ n *atomic.Int64 }

func (c countingService) Execute(cmd command.ID, input []byte) []byte {
	c.n.Add(1)
	return []byte{0}
}

func recvFrame(t *testing.T, ep transport.Endpoint) []byte {
	t.Helper()
	select {
	case frame := <-ep.Recv():
		return frame
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for response")
		return nil
	}
}

// Regression test for retransmission metastability: duplicates of a
// command whose original is still in flight (parked or executing) must
// be dropped at admission, not queued as new work.
func TestInFlightDuplicatesDropped(t *testing.T) {
	net := transport.NewMemNetwork(1)
	t.Cleanup(func() { _ = net.Close() })
	var count atomic.Int64
	gate := make(chan struct{})
	svc := gatedService{n: &count, gate: gate}
	compiled, _ := cdep.Compile(spec(), 1)
	s, err := Start(Config{Workers: 1, Service: svc, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	reply, err := net.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	req := &command.Request{Client: 5, Seq: 1, Cmd: cmdWrite, Input: input(1, 1), Reply: "probe"}
	s.Submit(req)
	// Retransmission storm while the original is stuck executing.
	for i := 0; i < 50; i++ {
		s.Submit(req)
	}
	close(gate) // let the original finish
	recvFrame(t, reply)
	// One more retransmission after completion answers from the cache.
	s.Submit(req)
	recvFrame(t, reply)
	if got := count.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (duplicates must not queue)", got)
	}
}

type gatedService struct {
	n    *atomic.Int64
	gate chan struct{}
}

func (g gatedService) Execute(cmd command.ID, input []byte) []byte {
	<-g.gate
	g.n.Add(1)
	return []byte{0}
}

func TestSubmitAfterClose(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 1)
	net := transport.NewMemNetwork(1)
	defer net.Close()
	s, err := Start(Config{Workers: 1, Service: countingService{&atomic.Int64{}}, Compiled: compiled, Transport: net})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	_ = s.Close()
	if s.Submit(&command.Request{Client: 1, Seq: 1, Cmd: cmdRead, Input: input(1, 1)}) {
		t.Fatal("Submit succeeded after Close")
	}
}

func TestHighThroughputMixedLoad(t *testing.T) {
	compiled, _ := cdep.Compile(spec(), 8)
	svc := &traceService{inFlight: make(map[uint64]command.ID), conflicts: compiled}
	s, _ := startSched(t, 8, svc)

	const n = 20000
	for i := uint64(1); i <= n; i++ {
		cmd := cmdWrite
		switch {
		case i%97 == 0:
			cmd = cmdGlobal
		case i%3 == 0:
			cmd = cmdRead
		}
		s.Submit(&command.Request{Client: 1, Seq: i, Cmd: cmd, Input: input(i%64, i)})
	}
	waitExecuted(t, svc, n)
	if svc.violation.Load() {
		t.Fatal("conflict violation under load")
	}
}

func TestConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork(1)
	defer net.Close()
	if _, err := Start(Config{Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := Start(Config{Workers: 1, Transport: net}); err == nil {
		t.Fatal("missing Compiled accepted")
	}
	_ = fmt.Sprint() // keep fmt imported
}
