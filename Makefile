# Tier-1 gate and developer shortcuts. `make verify` is the one
# command CI and sessions run before shipping.

GO ?= go

.PHONY: verify vet build test no-legacy-rollback allocs-gate obs-gate flight-gate race paxos-stress bench sched-ablation admit-ablation schedfast-ablation multikey-ablation optimistic-ablation rollback-ablation recovery-ablation compartment-ablation obs-ablation

verify: vet build test no-legacy-rollback allocs-gate obs-gate flight-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The undo-record/clone-replay rollback model is gone: non-test code
# must not reference the deleted command.Undoable/command.Cloneable
# interfaces (speculation rolls back through versioned stores —
# internal/mvstore — since the multi-version refactor).
no-legacy-rollback:
	@if git ls-files '*.go' | grep -v '_test\.go$$' | xargs grep -n 'command\.\(Undoable\|Cloneable\)' 2>/dev/null; then \
		echo "verify: non-test code references the deleted command.Undoable/Cloneable rollback model"; \
		exit 1; \
	fi

# Steady-state allocation gate for the two admission hot paths: the
# index engine's batched keyed admission and the proxy-proposer's
# frame admission must both report 0 allocs/op (pooled inodes/tokens/
# reader groups and the pooled group buffers make admission recycle
# everything it touches; warm-up growth is excluded by the benchmarks'
# own design). A regression that re-introduces per-command garbage
# fails verify, not just a benchmark diff.
allocs-gate:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkAdmitKeyedIndexBatch$$' -benchmem -benchtime 100000x ./internal/sched/); \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkAdmitKeyedIndexBatch.* 0 allocs/op' || \
		{ echo "allocs-gate: BenchmarkAdmitKeyedIndexBatch no longer 0 allocs/op"; exit 1; }
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkProxySubmit$$' -benchmem -benchtime 100000x ./internal/proxy/); \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkProxySubmit.* 0 allocs/op' || \
		{ echo "allocs-gate: BenchmarkProxySubmit no longer 0 allocs/op"; exit 1; }

# Sampled-tracing overhead gate: best-of-3 throughput on the e2e
# sP-SMR/index kv workload with 1-in-1024 stage tracing must stay
# within 3% of tracing-off (the observability layer's "free when
# sampled" claim). Short measured intervals keep verify fast;
# best-of-3 damps scheduler noise.
obs-gate:
	$(GO) run ./cmd/psmr-bench -exp obsgate -duration 2s -warmup 300ms

# Flight-recorder gate, two halves of the "always-on black box" claim:
# (1) a journal emit that loses the sampling coin-flip must cost 0
# allocs/op (the common case on the per-command paths), and (2) e2e
# throughput with the journal on (the default) must stay within 3% of
# journal-off, best-of-3 on the same workload as the obs gate.
flight-gate:
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkJournalEmitSampledOut$$' -benchmem -benchtime 100000x ./internal/obs/); \
	echo "$$out"; \
	echo "$$out" | grep -q 'BenchmarkJournalEmitSampledOut.* 0 allocs/op' || \
		{ echo "flight-gate: BenchmarkJournalEmitSampledOut no longer 0 allocs/op"; exit 1; }
	$(GO) run ./cmd/psmr-bench -exp flightgate -duration 2s -warmup 300ms

# Race-detector pass over the whole module (the root e2e suite scales
# its workloads down under -race; see raceEnabled in race_test.go).
race:
	$(GO) test -race ./...

# The paxos suite had a teardown flake once; keep it honest.
paxos-stress:
	$(GO) test -count=5 ./internal/paxos/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scan vs index-based scheduler ablation (update-heavy kvstore).
sched-ablation:
	$(GO) run ./cmd/psmr-bench -exp sched

# Batch-first admission ablation on the index engine: single-vs-batch
# admission x reader sets x work stealing (50/50 read/update kvstore).
admit-ablation:
	$(GO) run ./cmd/psmr-bench -exp admit

# Scheduler raw-speed ablation: parked owner rendezvous vs deposit-
# and-continue multi-key handoff on the index engine, under all-write
# kvstore workloads with 0/10/50% two-key transfers; emits
# BENCH_schedfast.json alongside the printed rows.
schedfast-ablation:
	$(GO) run ./cmd/psmr-bench -exp schedfast

# Barrier-vs-multikey ablation: the two-key kvstore transfer under a
# single-key C-G (all-worker barrier) vs the key-set C-Dep (owner
# rendezvous), on both scheduling engines.
multikey-ablation:
	$(GO) run ./cmd/psmr-bench -exp multikey

# Optimistic-execution ablation: speculate on the coordinators'
# pre-consensus stream and reconcile on the decided order, off/on x
# scan/index engines x workload collision rate; reports speculation
# hit-rate and rollback counters.
optimistic-ablation:
	$(GO) run ./cmd/psmr-bench -exp optimistic

# Rollback-model ablation: decided-path baseline vs mvstore epoch
# abort vs abort+re-speculation under forced optimistic reordering at
# 0/10/50% collision; emits BENCH_rollback.json alongside the printed
# rows. The netfs abort-cost-vs-store-size half of the story is
# BenchmarkRollbackDepth (`make bench`).
rollback-ablation:
	$(GO) run ./cmd/psmr-bench -exp rollback

# Checkpoint/recovery ablation: coordinated on-barrier snapshots at
# interval off/1k/8k/64k decided commands x scan/index engines;
# reports throughput plus the quiesce pause and snapshot size. The
# crash-recovery e2e itself runs in the `race` gate
# (recovery_e2e_test.go).
recovery-ablation:
	$(GO) run ./cmd/psmr-bench -exp checkpoint

# Compartmentalized-ordering ablation: proxy-proposer tier size
# (0/1/2/4 ingress proxies) x learner fan-out off/2 delivery stripes
# per group; reports throughput, the leader's inbound frames-per-
# command compression and the proxies' batch fill, and emits
# BENCH_compartment.json alongside the printed rows.
compartment-ablation:
	$(GO) run ./cmd/psmr-bench -exp compartment

# Observability ablation: pipeline-stage tracing off / 1-in-1024
# sampled / every command x scan/index engines; prints the per-stage
# latency breakdown for the traced rows and emits BENCH_obs.json with
# the stage histograms and the full registry snapshot embedded.
obs-ablation:
	$(GO) run ./cmd/psmr-bench -exp obs
