package psmr_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/paxos"
	"github.com/psmr/psmr/internal/transport"
)

// regSvc is a deterministic register-array service used by the
// integration tests: keyed writes/reads plus two global commands. The
// backing array is safe for the concurrency P-SMR promises (commands on
// distinct slots touch distinct memory; conflicting commands are
// serialized by the replication protocol, not by the service). Slots
// are read and written atomically so the tests may fingerprint a
// replica that is still executing (convergence polling) without racing
// the worker threads.
type regSvc struct {
	vals  []atomic.Uint64
	execs atomic.Int64
}

const (
	cmdWrite command.ID = iota + 1
	cmdRead
	cmdWriteAll
	cmdSum
)

const regSlots = 64

func newRegSvc() *regSvc { return &regSvc{vals: make([]atomic.Uint64, regSlots)} }

func regKey(input []byte) (uint64, bool) {
	if len(input) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(input[:8]), true
}

func regSpec() cdep.Spec {
	return cdep.Spec{
		Commands: []cdep.Command{
			{ID: cmdWrite, Name: "write", Key: regKey},
			{ID: cmdRead, Name: "read", Key: regKey},
			{ID: cmdWriteAll, Name: "writeall"},
			{ID: cmdSum, Name: "sum"},
		},
		Deps: []cdep.Dep{
			{A: cmdWrite, B: cmdWrite, SameKey: true},
			{A: cmdWrite, B: cmdRead, SameKey: true},
			{A: cmdWriteAll, B: cmdWrite}, {A: cmdWriteAll, B: cmdRead},
			{A: cmdWriteAll, B: cmdWriteAll}, {A: cmdWriteAll, B: cmdSum},
			{A: cmdSum, B: cmdWrite},
		},
	}
}

func writeInput(key, val uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, key)
	binary.LittleEndian.PutUint64(buf[8:], val)
	return buf
}

func keyInput(key uint64) []byte {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, key)
	return buf
}

func (s *regSvc) Execute(cmd command.ID, input []byte) []byte {
	s.execs.Add(1)
	switch cmd {
	case cmdWrite:
		if len(input) < 16 {
			return []byte{1}
		}
		k := binary.LittleEndian.Uint64(input[:8]) % regSlots
		v := binary.LittleEndian.Uint64(input[8:16])
		s.vals[k].Store(v)
		return []byte{0}
	case cmdRead:
		if len(input) < 8 {
			return []byte{1}
		}
		k := binary.LittleEndian.Uint64(input[:8]) % regSlots
		return binary.LittleEndian.AppendUint64(nil, s.vals[k].Load())
	case cmdWriteAll:
		if len(input) < 8 {
			return []byte{1}
		}
		v := binary.LittleEndian.Uint64(input[:8])
		for i := range s.vals {
			s.vals[i].Store(v)
		}
		return []byte{0}
	case cmdSum:
		var sum uint64
		for i := range s.vals {
			sum += s.vals[i].Load()
		}
		return binary.LittleEndian.AppendUint64(nil, sum)
	default:
		return []byte{0xff}
	}
}

// fingerprint hashes the service state; only call when the replica is
// quiescent.
func (s *regSvc) fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := range s.vals {
		binary.LittleEndian.PutUint64(buf[:], s.vals[i].Load())
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// startCluster boots a cluster whose per-replica services are captured
// for state inspection.
func startCluster(t *testing.T, cfg psmr.Config) (*psmr.Cluster, []*regSvc) {
	t.Helper()
	var (
		mu   sync.Mutex
		svcs []*regSvc
	)
	cfg.Spec = regSpec()
	cfg.NewService = func() command.Service {
		mu.Lock()
		defer mu.Unlock()
		s := newRegSvc()
		svcs = append(svcs, s)
		return s
	}
	cl, err := psmr.StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl, svcs
}

func mustClient(t *testing.T, cl *psmr.Cluster) *clientHandle {
	t.Helper()
	c, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return &clientHandle{t: t, c: c}
}

type clientHandle struct {
	t *testing.T
	c interface {
		Invoke(cmd command.ID, input []byte) ([]byte, error)
	}
}

func (h *clientHandle) invoke(cmd command.ID, input []byte) []byte {
	h.t.Helper()
	out, err := h.c.Invoke(cmd, input)
	if err != nil {
		h.t.Fatalf("Invoke(%d): %v", cmd, err)
	}
	return out
}

func allModes() []psmr.Mode {
	return []psmr.Mode{psmr.ModePSMR, psmr.ModeSMR, psmr.ModeSPSMR}
}

func TestWriteReadAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cl, _ := startCluster(t, psmr.Config{
				Mode:    mode,
				Workers: 4,
			})
			h := mustClient(t, cl)
			h.invoke(cmdWrite, writeInput(7, 1234))
			out := h.invoke(cmdRead, keyInput(7))
			if got := binary.LittleEndian.Uint64(out); got != 1234 {
				t.Fatalf("read = %d, want 1234", got)
			}
		})
	}
}

func TestGlobalCommandAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cl, _ := startCluster(t, psmr.Config{
				Mode:    mode,
				Workers: 4,
			})
			h := mustClient(t, cl)
			h.invoke(cmdWriteAll, keyInput(5))
			out := h.invoke(cmdSum, nil)
			if got := binary.LittleEndian.Uint64(out); got != 5*regSlots {
				t.Fatalf("sum = %d, want %d", got, 5*regSlots)
			}
			// Keyed write then global read observes the write.
			h.invoke(cmdWrite, writeInput(3, 100))
			out = h.invoke(cmdSum, nil)
			if got := binary.LittleEndian.Uint64(out); got != 5*(regSlots-1)+100 {
				t.Fatalf("sum = %d, want %d", got, 5*(regSlots-1)+100)
			}
		})
	}
}

// Synchronous-mode commands must execute exactly once per replica
// despite being delivered by every worker (Algorithm 1: only t_e
// executes).
func TestSynchronousModeExecutesOnce(t *testing.T) {
	cl, svcs := startCluster(t, psmr.Config{
		Mode:    psmr.ModePSMR,
		Workers: 8,
	})
	h := mustClient(t, cl)
	const n = 20
	for i := 0; i < n; i++ {
		h.invoke(cmdWriteAll, keyInput(uint64(i)))
	}
	// Every replica executed exactly n commands (once the laggard
	// catches up).
	waitForCondition(t, 5*time.Second, func() bool {
		for _, s := range svcs {
			if s.execs.Load() != n {
				return false
			}
		}
		return true
	}, func() string {
		return fmt.Sprintf("exec counts: %d and %d, want %d each",
			svcs[0].execs.Load(), svcs[1].execs.Load(), n)
	})
}

func waitForCondition(t *testing.T, timeout time.Duration, cond func() bool, desc func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not met: %s", desc())
}

// Replicas converge to identical state under a concurrent mixed
// workload, in every mode.
func TestReplicaConvergence(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cl, svcs := startCluster(t, psmr.Config{
				Mode:    mode,
				Workers: 4,
			})
			clients, ops := 4, 150
			if raceEnabled {
				// The race detector slows this sync-heavy stack by two
				// orders of magnitude; keep the shape, shrink the size.
				clients, ops = 2, 30
			}
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				h := mustClient(t, cl)
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < ops; i++ {
						switch rng.Intn(10) {
						case 0:
							h.invoke(cmdWriteAll, keyInput(uint64(rng.Intn(100))))
						case 1, 2, 3:
							h.invoke(cmdRead, keyInput(uint64(rng.Intn(regSlots))))
						default:
							h.invoke(cmdWrite, writeInput(uint64(rng.Intn(regSlots)), rng.Uint64()))
						}
					}
				}(int64(c))
			}
			wg.Wait()
			total := int64(clients * ops)
			waitForCondition(t, 10*time.Second, func() bool {
				for _, s := range svcs {
					if s.execs.Load() < total {
						return false
					}
				}
				return svcs[0].fingerprint() == svcs[1].fingerprint()
			}, func() string {
				return fmt.Sprintf("execs %d/%d, fingerprints %x vs %x",
					svcs[0].execs.Load(), svcs[1].execs.Load(),
					svcs[0].fingerprint(), svcs[1].fingerprint())
			})
		})
	}
}

// A retransmitted request must not be executed twice (at-most-once).
func TestDedupOnRetransmission(t *testing.T) {
	cl, svcs := startCluster(t, psmr.Config{
		Mode:          psmr.ModePSMR,
		Workers:       2,
		RetryInterval: 50 * time.Millisecond,
	})
	// Drop all responses to the client for a while so it retransmits.
	clientAddr := transport.Addr("client/1")
	cl.Transport().SetFault("", clientAddr, transport.Fault{Partitioned: true})

	c, err := cl.NewClientID(1)
	if err != nil {
		t.Fatalf("NewClientID: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	call, err := c.Submit(cmdWrite, writeInput(1, 42))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let several retransmissions happen, then heal.
	time.Sleep(250 * time.Millisecond)
	cl.Transport().SetFault("", clientAddr, transport.Fault{})
	if _, err := call.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Each replica must have executed the command exactly once even
	// though it appeared several times in the ordered stream.
	waitForCondition(t, 5*time.Second, func() bool {
		return svcs[0].execs.Load() == 1 && svcs[1].execs.Load() == 1
	}, func() string {
		return fmt.Sprintf("execs %d and %d, want 1 and 1",
			svcs[0].execs.Load(), svcs[1].execs.Load())
	})
	if got := svcs[0].vals[1].Load(); got != 42 {
		t.Fatalf("value = %d, want 42", got)
	}
}

func TestCoordinatorFailoverServiceContinues(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:                  psmr.ModePSMR,
		Workers:               2,
		CoordinatorCandidates: 2,
		RetryInterval:         100 * time.Millisecond,
	})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(4, 7))

	// Kill every group's primary coordinator.
	for g := range cl.Groups() {
		cl.CrashCoordinator(g, 0)
	}
	// Clients keep working: retransmission rotates to the standby,
	// which takes over leadership.
	for i := 0; i < 10; i++ {
		h.invoke(cmdWrite, writeInput(uint64(i), uint64(i)))
	}
	out := h.invoke(cmdRead, keyInput(4))
	if got := binary.LittleEndian.Uint64(out); got != 4 {
		t.Fatalf("read = %d, want 4", got)
	}
}

func TestAcceptorFailureTolerated(t *testing.T) {
	cl, _ := startCluster(t, psmr.Config{
		Mode:    psmr.ModePSMR,
		Workers: 2,
	})
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 1))
	// f = 1 of 3 acceptors may fail in every group.
	for g := range cl.Groups() {
		cl.CrashAcceptor(g, 2)
	}
	for i := 0; i < 20; i++ {
		h.invoke(cmdWrite, writeInput(uint64(i), uint64(i*10)))
	}
	out := h.invoke(cmdRead, keyInput(19))
	if got := binary.LittleEndian.Uint64(out); got != 190 {
		t.Fatalf("read = %d, want 190", got)
	}
}

func TestReplicaCrashTolerated(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cl, _ := startCluster(t, psmr.Config{
				Mode:    mode,
				Workers: 2,
			})
			h := mustClient(t, cl)
			h.invoke(cmdWrite, writeInput(2, 22))
			// n = f+1 = 2: one replica may crash.
			cl.CrashReplica(1)
			for i := 10; i < 20; i++ {
				h.invoke(cmdWrite, writeInput(uint64(i), uint64(i)))
			}
			out := h.invoke(cmdRead, keyInput(2))
			if got := binary.LittleEndian.Uint64(out); got != 22 {
				t.Fatalf("read = %d, want 22", got)
			}
		})
	}
}

// Algorithm 1 supports arbitrary destination subsets, not only
// singleton/all: inject requests with γ = {0,2} directly and check
// execution-once plus liveness of uninvolved workers.
func TestPartialBarrierGamma(t *testing.T) {
	cl, svcs := startCluster(t, psmr.Config{
		Mode:    psmr.ModePSMR,
		Workers: 4,
	})
	tr := cl.Transport()
	replyEP, err := tr.Listen("probe")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	// Send a γ={0,2} command through the serial group (the last one).
	serial := cl.Groups()[len(cl.Groups())-1]
	req := &command.Request{
		Client: 999,
		Seq:    1,
		Cmd:    cmdWriteAll,
		Gamma:  command.GammaOf(0, 2),
		Input:  keyInput(9),
		Reply:  "probe",
	}
	frame := command.AppendRequest(nil, req)
	if err := tr.Send(serial.Coordinators[0], paxos.NewProposeFrame(serial.ID, frame)); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case respFrame := <-replyEP.Recv():
		resp, err := command.DecodeResponse(respFrame)
		if err != nil || resp.Seq != 1 {
			t.Fatalf("bad response: %v %+v", err, resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response for partial-γ command")
	}
	waitForCondition(t, 5*time.Second, func() bool {
		return svcs[0].execs.Load() == 1 && svcs[1].execs.Load() == 1
	}, func() string {
		return fmt.Sprintf("execs %d and %d", svcs[0].execs.Load(), svcs[1].execs.Load())
	})
	// Workers 1 and 3 were not involved; keyed commands on their
	// groups still flow.
	h := mustClient(t, cl)
	h.invoke(cmdWrite, writeInput(1, 11)) // key 1 → group 1
	h.invoke(cmdWrite, writeInput(3, 33)) // key 3 → group 3
}

func TestModeString(t *testing.T) {
	if psmr.ModePSMR.String() != "P-SMR" || psmr.ModeSMR.String() != "SMR" ||
		psmr.ModeSPSMR.String() != "sP-SMR" {
		t.Fatal("mode strings")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := psmr.StartCluster(psmr.Config{Mode: psmr.ModePSMR}); err == nil {
		t.Fatal("missing NewService accepted")
	}
	if _, err := psmr.StartCluster(psmr.Config{
		Mode:       psmr.Mode(99),
		NewService: func() command.Service { return newRegSvc() },
	}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := psmr.StartCluster(psmr.Config{
		Mode:       psmr.ModePSMR,
		Workers:    65,
		NewService: func() command.Service { return newRegSvc() },
	}); err == nil {
		t.Fatal("worker overflow accepted")
	}
	// Subset groups exist only in multi-group P-SMR deployments.
	if _, err := psmr.StartCluster(psmr.Config{
		Mode:         psmr.ModeSPSMR,
		Workers:      4,
		SubsetGroups: [][]int{{0, 1}},
		NewService:   func() command.Service { return newRegSvc() },
	}); err == nil {
		t.Fatal("subset groups accepted outside P-SMR mode")
	}
	if _, err := psmr.StartCluster(psmr.Config{
		Mode:         psmr.ModePSMR,
		Workers:      4,
		SubsetGroups: [][]int{{0, 7}},
		NewService:   func() command.Service { return newRegSvc() },
	}); err == nil {
		t.Fatal("subset member out of worker range accepted")
	}
}
