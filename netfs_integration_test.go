package psmr_test

// Integration tests for NetFS over full replicated clusters: the
// paper's second service (§V-B), with structural commands in
// synchronous mode, per-path commands spread across workers, and
// lz4-compressed payloads end to end.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/netfs"
)

const netfsT0 = int64(1_700_000_000_000_000_000)

func startNetFSCluster(t *testing.T, mode psmr.Mode, workers int) (*psmr.Cluster, []*netfs.Service) {
	t.Helper()
	var (
		mu   sync.Mutex
		svcs []*netfs.Service
	)
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:    mode,
		Workers: workers,
		NewService: func() command.Service {
			mu.Lock()
			defer mu.Unlock()
			svc := netfs.NewService()
			svcs = append(svcs, svc)
			return svc
		},
		Spec: netfs.Spec(),
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl, svcs
}

func netfsClient(t *testing.T, cl *psmr.Cluster) *netfs.Client {
	t.Helper()
	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })
	return netfs.NewClient(inv)
}

func TestNetFSLifecycleAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cl, _ := startNetFSCluster(t, mode, 4)
			fs := netfsClient(t, cl)

			if err := fs.Mkdir("/dir", 0o755, netfsT0); err != nil {
				t.Fatalf("mkdir: %v", err)
			}
			fd, err := fs.Create("/dir/file", 0o644, netfsT0)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			content := bytes.Repeat([]byte("replicated file content "), 100)
			n, err := fs.Write(fd, 0, content, netfsT0)
			if err != nil || int(n) != len(content) {
				t.Fatalf("write: %v n=%d", err, n)
			}
			got, err := fs.Read(fd, 0, uint32(len(content)+10))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, content) {
				t.Fatalf("read back %d bytes, want %d", len(got), len(content))
			}
			st, err := fs.Lstat("/dir/file")
			if err != nil || st.Size != uint64(len(content)) {
				t.Fatalf("lstat: %v %+v", err, st)
			}
			names, err := fs.Readdir("/dir")
			if err != nil || len(names) != 1 || names[0] != "file" {
				t.Fatalf("readdir: %v %v", err, names)
			}
			if err := fs.Release(fd); err != nil {
				t.Fatalf("release: %v", err)
			}
			if err := fs.Unlink("/dir/file", netfsT0); err != nil {
				t.Fatalf("unlink: %v", err)
			}
			if err := fs.Rmdir("/dir", netfsT0); err != nil {
				t.Fatalf("rmdir: %v", err)
			}
			// Errors propagate with their POSIX-ish codes.
			if err := fs.Access("/dir"); err == nil {
				t.Fatal("access after rmdir succeeded")
			}
		})
	}
}

// Concurrent clients on disjoint directories: replicas converge to the
// same file system (inode counts, fd tables, file contents).
func TestNetFSConcurrentClientsConverge(t *testing.T) {
	cl, svcs := startNetFSCluster(t, psmr.ModePSMR, 8)

	clients, ops := 4, 12
	if raceEnabled {
		clients, ops = 2, 5
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		fs := netfsClient(t, cl)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			dir := fmt.Sprintf("/client%d", c)
			if err := fs.Mkdir(dir, 0o755, netfsT0); err != nil {
				t.Errorf("mkdir %s: %v", dir, err)
				return
			}
			for i := 0; i < ops; i++ {
				path := fmt.Sprintf("%s/f%d", dir, i)
				fd, err := fs.Create(path, 0o644, netfsT0+int64(i))
				if err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
				if _, err := fs.Write(fd, 0, []byte(path), netfsT0); err != nil {
					t.Errorf("write %s: %v", path, err)
					return
				}
				data, err := fs.Read(fd, 0, 1024)
				if err != nil || string(data) != path {
					t.Errorf("read %s: %v %q", path, err, data)
					return
				}
				if err := fs.Release(fd); err != nil {
					t.Errorf("release %s: %v", path, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Both replicas end with identical structure.
	wantInodes := 1 + clients + clients*ops // root + dirs + files
	deadline := time.Now().Add(10 * time.Second)
	for {
		if svcs[0].FS().Inodes() == wantInodes && svcs[1].FS().Inodes() == wantInodes &&
			svcs[0].FS().OpenFDs() == 0 && svcs[1].FS().OpenFDs() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: inodes %d/%d (want %d), fds %d/%d (want 0)",
				svcs[0].FS().Inodes(), svcs[1].FS().Inodes(), wantInodes,
				svcs[0].FS().OpenFDs(), svcs[1].FS().OpenFDs())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Same-path commands land on the same worker group; commands on
// different paths may use different groups (the per-path parallelism
// of §VI-C).
func TestNetFSPathsSpreadAcrossGroups(t *testing.T) {
	cl, _ := startNetFSCluster(t, psmr.ModePSMR, 8)
	fs := netfsClient(t, cl)

	if err := fs.Mkdir("/spread", 0o755, netfsT0); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	// Create several files and do per-path reads; correctness across
	// all of them implies the routing + merge machinery agree on
	// destinations (a wrong group would stall or misroute the call).
	for i := 0; i < 16; i++ {
		path := fmt.Sprintf("/spread/file%d", i)
		fd, err := fs.Create(path, 0o644, netfsT0)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		if _, err := fs.Write(fd, 0, []byte{byte(i)}, netfsT0); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		data, err := fs.Read(fd, 0, 8)
		if err != nil || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("read %s: %v %v", path, err, data)
		}
		if err := fs.Access(path); err != nil {
			t.Fatalf("access %s: %v", path, err)
		}
	}
}
