package psmr_test

// End-to-end determinism for the scheduler raw-speed tier: the
// deposit-and-continue multi-key handoff replaces the parking owner
// rendezvous with an execution discipline where owners keep draining
// unrelated keyed work while a token is pending, but both protocols
// claim the same per-key lock points in the same global order — so
// full replicated clusters running either one (and either scheduling
// engine, with or without speculation riding on top) must converge to
// byte-identical state fingerprints under the shared mixed workload of
// two-key transfers, snapshot reads, keyed updates and plain reads.
// The owner-level concurrency claims themselves (owners drain while a
// token pends under handoff; they provably idle under park) are pinned
// by the internal/sched stress tests; this file is the whole-cluster
// acceptance bar. Runs under `make race`.

import (
	"testing"

	psmr "github.com/psmr/psmr"
)

// TestHandoffDeterminismVsPark compares every raw-speed-tier variant
// against the parked-rendezvous baseline fingerprint: the handoff
// engine plain, the scan engine (which ignores the knob — the
// cross-engine control), and handoff under speculation with and
// without forced optimistic/decided reordering, which drives the
// rollback path across pooled multi-key tokens.
func TestHandoffDeterminismVsPark(t *testing.T) {
	parked := func(cfg *psmr.Config) { cfg.SchedTuning.NoMKHandoff = true }
	want, _ := runOptimisticWorkload(t, psmr.SchedIndex, false, 0, false, parked)

	variants := []struct {
		name       string
		scheduler  psmr.SchedulerKind
		optimistic bool
		reorder    int
		park       bool
	}{
		{name: "index-handoff", scheduler: psmr.SchedIndex},
		{name: "scan-control", scheduler: psmr.SchedScan},
		{name: "index-handoff-optimistic", scheduler: psmr.SchedIndex, optimistic: true},
		{name: "index-handoff-optimistic-reorder", scheduler: psmr.SchedIndex, optimistic: true, reorder: 2},
		{name: "index-park-optimistic-reorder", scheduler: psmr.SchedIndex, optimistic: true, reorder: 2, park: true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var mutate []func(*psmr.Config)
			if v.park {
				mutate = append(mutate, parked)
			}
			got, counters := runOptimisticWorkload(t, v.scheduler, v.optimistic, v.reorder, false, mutate...)
			if got != want {
				t.Fatalf("%s fingerprint %x, want parked baseline %x", v.name, got, want)
			}
			if v.optimistic {
				t.Logf("%s: %v", v.name, counters)
			}
		})
	}
}
