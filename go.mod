module github.com/psmr/psmr

go 1.24
