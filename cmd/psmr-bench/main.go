// Command psmr-bench regenerates the paper's evaluation (§VII): every
// figure and table, at configurable scale. Each experiment prints the
// same rows/series the paper reports: throughput in Kcps with
// normalisation against the figure's baseline, mean latency, a latency
// CDF summary, and server CPU usage.
//
// Usage:
//
//	psmr-bench -exp all
//	psmr-bench -exp fig3 -keys 1000000 -duration 4s -clients 8
//	psmr-bench -exp fig7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/experiment"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|fig3|fig4|fig5|fig6|fig7|fig8|sched|admit|schedfast|multikey|optimistic|rollback|checkpoint|compartment|obs|obsgate|flightgate|all")
		threads  = flag.Int("threads", 8, "worker threads for the sched/admit ablations")
		keys     = flag.Int("keys", 1_000_000, "preloaded database keys (paper: 10M)")
		clients  = flag.Int("clients", 8, "closed-loop clients")
		window   = flag.Int("window", 50, "outstanding commands per client (paper: 50)")
		duration = flag.Duration("duration", 4*time.Second, "measured interval per point")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "warmup before measuring")
	)
	flag.Parse()

	scale := experiment.Scale{
		Keys:     *keys,
		Clients:  *clients,
		Window:   *window,
		Duration: *duration,
		Warmup:   *warmup,
	}
	if err := run(*exp, scale, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "psmr-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale Scale, threads int) error {
	switch exp {
	case "table1":
		return runTable1()
	case "fig3":
		return runFig3(scale)
	case "fig4":
		return runFig4(scale)
	case "fig5":
		return runFig5(scale)
	case "fig6":
		return runFig6(scale)
	case "fig7":
		return runFig7(scale)
	case "fig8":
		return runFig8(scale)
	case "sched":
		return runSched(scale, threads)
	case "admit":
		return runAdmit(scale, threads)
	case "schedfast":
		return runSchedFast(scale, threads)
	case "multikey":
		return runMultiKey(scale, threads)
	case "optimistic":
		return runOptimistic(scale, threads)
	case "rollback":
		return runRollback(scale, threads)
	case "checkpoint":
		return runCheckpoint(scale, threads)
	case "compartment":
		return runCompartment(scale, threads)
	case "obs":
		return runObs(scale, threads)
	case "obsgate":
		return runObsGate(scale, threads)
	case "flightgate":
		return runFlightGate(scale, threads)
	case "all":
		for _, fn := range []func() error{
			runTable1,
			func() error { return runFig3(scale) },
			func() error { return runFig4(scale) },
			func() error { return runFig5(scale) },
			func() error { return runFig6(scale) },
			func() error { return runFig7(scale) },
			func() error { return runFig8(scale) },
			func() error { return runSched(scale, threads) },
			func() error { return runAdmit(scale, threads) },
			func() error { return runSchedFast(scale, threads) },
			func() error { return runMultiKey(scale, threads) },
			func() error { return runOptimistic(scale, threads) },
			func() error { return runRollback(scale, threads) },
			func() error { return runCheckpoint(scale, threads) },
			func() error { return runCompartment(scale, threads) },
			func() error { return runObs(scale, threads) },
		} {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// runSched runs the scan-vs-index scheduler ablation: sP-SMR and
// no-rep under the update-heavy kvstore workload, the paper's measured
// scheduler bottleneck against the index-based early scheduler.
func runSched(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Scheduler ablation — scan vs index-based early scheduling\n")
	fmt.Printf("(update-heavy kvstore, %d workers; paper §VI-B: the scan\n", threads)
	fmt.Println(" scheduler saturates one core while workers idle)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.SchedAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("sched %v: %w", setup.Technique, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		// The paper's bottleneck claim is about where cycles go: under
		// scan the scheduler thread burns a core's worth of admission
		// work, under index the scheduler role should shrink to noise.
		fmt.Printf("    roles: scheduler=%.1f%% worker=%.1f%% learner=%.1f%%\n",
			res.CPUByRole["scheduler"], res.CPUByRole["worker"], res.CPUByRole["learner"])
	}
	fmt.Println()
	for _, pair := range [][2]string{
		{"sP-SMR", "sP-SMR/index"},
		{"no-rep", "no-rep/index"},
	} {
		if kcps[pair[0]] > 0 && kcps[pair[1]] > 0 {
			fmt.Printf("  %-12s index/scan speedup: %.2fx\n", pair[0], kcps[pair[1]]/kcps[pair[0]])
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

// runAdmit runs the batch-first admission ablation on the index
// engine: single-vs-batch admission × reader sets on/off × work
// stealing on/off under the 50/50 read/update kvstore workload.
func runAdmit(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Admission ablation — batch-first pipeline knobs (sP-SMR/index,\n")
	fmt.Printf("50%%/50%% read/update kvstore, %d workers; single-vs-batch\n", threads)
	fmt.Println(" admission x reader sets x work stealing)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.AdmitAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("admit %v: %w", setup.Tuning.Label(), err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		fmt.Printf("    roles: scheduler=%.1f%% worker=%.1f%% learner=%.1f%%\n",
			res.CPUByRole["scheduler"], res.CPUByRole["worker"], res.CPUByRole["learner"])
	}
	fmt.Println()
	base := kcps["sP-SMR/index single+nors+nosteal"]
	tuned := kcps["sP-SMR/index batch+rs+steal"]
	if base > 0 && tuned > 0 {
		fmt.Printf("  batch+rs+steal / single+nors+nosteal speedup: %.2fx\n", tuned/base)
	}
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

// runSchedFast runs the scheduler raw-speed ablation: the multi-key
// owner protocol (parked rendezvous vs deposit-and-continue handoff)
// under all-write workloads with 0/10/50% two-key transfers. The park
// rows idle every owner but the executor at each multi-key token; the
// handoff rows keep those owners draining unrelated keyed work. Rows
// are written to BENCH_schedfast.json so the sweep is diffable across
// runs.
func runSchedFast(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Sched raw-speed ablation — parked rendezvous vs deposit-and-\n")
	fmt.Printf("continue multi-key handoff (sP-SMR/index, %d workers;\n", threads)
	fmt.Println(" all-write kvstore with 0/10/50% two-key transfers; 0% is the")
	fmt.Println(" no-multi-key control where both protocols must tie)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.SchedFastAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("schedfast %s %s: %w", setup.Tuning.Label(), setup.Tag, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		fmt.Printf("    roles: scheduler=%.1f%% worker=%.1f%% learner=%.1f%%\n",
			res.CPUByRole["scheduler"], res.CPUByRole["worker"], res.CPUByRole["learner"])
	}
	fmt.Println()
	for _, xfer := range []string{"xfer=0%", "xfer=10%", "xfer=50%"} {
		park := kcps["sP-SMR/index batch+rs+steal+park "+xfer]
		handoff := kcps["sP-SMR/index batch+rs+steal "+xfer]
		if park > 0 && handoff > 0 {
			fmt.Printf("  %-9s handoff/park throughput: %.2fx\n", xfer, handoff/park)
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	if err := writeRowsJSON("BENCH_schedfast.json", results); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_schedfast.json")
	fmt.Println()
	return nil
}

// runMultiKey runs the barrier-vs-multikey ablation: the two-key
// kvstore transfer under a single-key C-G (every transfer an
// all-worker barrier) against the key-set C-Dep (owner rendezvous over
// the two touched keys), on both scheduling engines.
func runMultiKey(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Multi-key ablation — barrier C-G vs key-set C-Dep (sP-SMR,\n")
	fmt.Printf("50%%/50%% transfer/read kvstore, %d workers; scan and index\n", threads)
	fmt.Println(" engines; transfers hold only their two keys' owners)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.MultiKeyAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("multikey %v %s: %w", setup.Scheduler, setup.Tag, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		fmt.Printf("    roles: scheduler=%.1f%% worker=%.1f%% learner=%.1f%%\n",
			res.CPUByRole["scheduler"], res.CPUByRole["worker"], res.CPUByRole["learner"])
	}
	fmt.Println()
	for _, pair := range [][2]string{
		{"sP-SMR barrier-cg", "sP-SMR multikey-cg"},
		{"sP-SMR/index barrier-cg", "sP-SMR/index multikey-cg"},
	} {
		if kcps[pair[0]] > 0 && kcps[pair[1]] > 0 {
			fmt.Printf("  %-24s multikey/barrier speedup: %.2fx\n", pair[0], kcps[pair[1]]/kcps[pair[0]])
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

// runOptimistic runs the optimistic-execution ablation: speculation
// off/on × scan/index engines × workload collision rate, reporting
// throughput plus the speculation hit-rate and rollback counters.
func runOptimistic(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Optimistic ablation — speculate on the unordered stream,\n")
	fmt.Printf("reconcile on consensus (sP-SMR, %d workers; reads + hot-set\n", threads)
	fmt.Println(" transfers at 0/10/50% collision; scan and index engines)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.OptimisticAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("optimistic %v %s: %w", setup.Scheduler, setup.Tag, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		if res.Extra != nil {
			fmt.Printf("    speculation: hit-rate=%.1f%% (%.0f/%.0f) rollbacks=%.0f depth-sum=%.0f max-depth=%.0f\n",
				100*res.Extra["opt_hit_rate"], res.Extra["opt_hits"],
				res.Extra["opt_hits"]+res.Extra["opt_misses"],
				res.Extra["opt_rollbacks"], res.Extra["opt_rolled_back"], res.Extra["opt_max_rb_depth"])
		}
	}
	fmt.Println()
	for _, base := range []string{"sP-SMR", "sP-SMR/index"} {
		for _, col := range []string{"col=0%", "col=10%", "col=50%"} {
			off := kcps[base+" "+col]
			on := kcps[base+"+opt "+col]
			if off > 0 && on > 0 {
				fmt.Printf("  %-14s %-8s optimistic/decided throughput: %.2fx\n", base, col, on/off)
			}
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

// runRollback runs the rollback-model ablation: the decided-path
// baseline (speculation off) against mvstore speculation under forced
// optimistic/decided reordering, without and with re-speculation, at
// 0/10/50% workload collision. Every rollback goes through the
// versioned-store epoch abort (O(touched keys)); the rows report the
// rollback and re-speculation counters alongside throughput. Besides
// printing, the rows are written to BENCH_rollback.json so the
// ablation is diffable across runs. The store-size side of the
// rollback story (netfs abort cost flat vs state size) is the root
// BenchmarkRollbackDepth microbench.
func runRollback(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Rollback ablation — decided-path baseline vs mvstore epoch\n")
	fmt.Printf("abort vs abort+re-speculation (sP-SMR/index, %d workers;\n", threads)
	fmt.Println(" forced optimistic reordering; 0/10/50% collision workload)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.RollbackAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("rollback %s opt=%v respec=%v: %w",
				setup.Tag, setup.Optimistic, setup.ReSpeculate, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		if res.Extra != nil {
			fmt.Printf("    speculation: hit-rate=%.1f%% rollbacks=%.0f rolled-back=%.0f max-depth=%.0f re-speculated=%.0f\n",
				100*res.Extra["opt_hit_rate"], res.Extra["opt_rollbacks"],
				res.Extra["opt_rolled_back"], res.Extra["opt_max_rb_depth"],
				res.Extra["opt_respecs"])
		}
	}
	fmt.Println()
	for _, col := range []string{"col=0%", "col=10%", "col=50%"} {
		base := kcps["sP-SMR/index "+col]
		for _, row := range [][2]string{
			{"sP-SMR/index+opt " + col, "abort"},
			{"sP-SMR/index+opt+respec " + col, "abort+respec"},
		} {
			if on := kcps[row[0]]; base > 0 && on > 0 {
				fmt.Printf("  %-8s %-13s speculative/decided throughput: %.2fx\n", col, row[1], on/base)
			}
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	if err := writeRowsJSON("BENCH_rollback.json", results); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_rollback.json")
	fmt.Println()
	return nil
}

// benchRow is the JSON shape of one ablation row: the identifying
// technique string, throughput, latency summary and the raw Extra
// counters (speculation/rollback statistics for the rollback rows,
// proxy/leader ordering counters for the compartment rows).
type benchRow struct {
	Technique string             `json:"technique"`
	Threads   int                `json:"threads"`
	Kcps      float64            `json:"kcps"`
	MeanUs    float64            `json:"mean_us"`
	P99Us     float64            `json:"p99_us"`
	Extra     map[string]float64 `json:"extra,omitempty"`
}

// benchHost stamps every BENCH_*.json with the machine the numbers
// came from — without it a committed row and a regression report are
// not comparable.
type benchHost struct {
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	OS         string `json:"goos"`
	Arch       string `json:"goarch"`
	Kernel     string `json:"kernel,omitempty"`
}

func hostMeta() benchHost {
	h := benchHost{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
	if b, err := os.ReadFile("/proc/sys/kernel/osrelease"); err == nil {
		h.Kernel = strings.TrimSpace(string(b))
	}
	return h
}

// benchFile is the BENCH_*.json document: host metadata plus the rows.
type benchFile struct {
	Host benchHost  `json:"host"`
	Rows []benchRow `json:"rows"`
}

func writeRowsJSON(path string, results []*bench.Result) error {
	rows := make([]benchRow, 0, len(results))
	for _, res := range results {
		row := benchRow{
			Technique: res.Technique,
			Threads:   res.Threads,
			Kcps:      res.Kcps(),
			Extra:     res.Extra,
		}
		if res.Latency != nil && res.Latency.Count() > 0 {
			row.MeanUs = float64(res.Latency.Mean().Microseconds())
			row.P99Us = float64(res.Latency.Quantile(0.99).Microseconds())
		}
		rows = append(rows, row)
	}
	data, err := json.MarshalIndent(benchFile{Host: hostMeta(), Rows: rows}, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// runCompartment runs the compartmentalized-ordering ablation: a
// proxy-count scaling curve (0/1/2/4 ingress proxies) crossed with
// learner fan-out off/on (2 delivery stripes per group). Besides
// throughput, the proxy rows report the leader's inbound
// frames-per-command (the ingress compression the tier buys) and the
// proxies' mean batch fill. Rows are written to BENCH_compartment.json
// so the curve is diffable across runs.
func runCompartment(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Compartment ablation — proxy-proposer tier and learner fan-out\n")
	fmt.Printf("(sP-SMR/index, 50%%/50%% read/update kvstore, %d workers;\n", threads)
	fmt.Println(" proxies 0/1/2/4 x fan-out off/2 stripes; p=0,fan=0 is the")
	fmt.Println(" direct-submission baseline)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.CompartmentAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("compartment p=%d fan=%d: %w", setup.Proxies, setup.Fanout, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		if res.Extra != nil && res.Extra["leader_cmds"] > 0 {
			fmt.Printf("    ordering: leader frames/cmd=%.3f  proxy mean batch=%.1f (%.0f cmds in %.0f batches)\n",
				res.Extra["leader_frames_per_cmd"], res.Extra["proxy_mean_batch"],
				res.Extra["proxy_queued"], res.Extra["proxy_batches"])
		}
	}
	fmt.Println()
	base := kcps["sP-SMR/index"]
	for _, fan := range []string{"", " fan=2"} {
		for _, p := range []string{"p=1", "p=2", "p=4"} {
			name := "sP-SMR/index " + p + fan
			if on := kcps[name]; base > 0 && on > 0 {
				fmt.Printf("  %-24s vs direct baseline: %.2fx\n", p+fan, on/base)
			}
		}
	}
	if fanOnly := kcps["sP-SMR/index fan=2"]; base > 0 && fanOnly > 0 {
		fmt.Printf("  %-24s vs direct baseline: %.2fx\n", "fan=2", fanOnly/base)
	}
	for _, res := range results {
		printCDF(res)
	}
	if err := writeRowsJSON("BENCH_compartment.json", results); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_compartment.json")
	fmt.Println()
	return nil
}

// runCheckpoint runs the checkpoint-interval sweep: coordinated
// on-barrier snapshots off / every 1k / 8k / 64k decided commands,
// reporting throughput plus the quiesce pause (the time the worker
// pool stands still per snapshot) and the snapshot size.
func runCheckpoint(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Checkpoint ablation — coordinated on-barrier snapshots\n")
	fmt.Printf("(sP-SMR, 50%%/50%% read/update kvstore, %d workers; interval\n", threads)
	fmt.Println(" off/1k/8k/64k decided commands x scan/index engines; learner")
	fmt.Println(" retention is bounded by the interval, the quiesce pause is")
	fmt.Println(" what the snapshot costs)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.CheckpointAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("checkpoint %v %s: %w", setup.Scheduler, setup.Tag, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		if res.Extra != nil && res.Extra["ckpt_count"] > 0 {
			fmt.Printf("    checkpoints: count=%.0f pause-mean=%.0fµs pause-max=%.0fµs snapshot=%.0fB\n",
				res.Extra["ckpt_count"], res.Extra["ckpt_pause_mean_us"],
				res.Extra["ckpt_pause_max_us"], res.Extra["ckpt_bytes"])
		}
	}
	fmt.Println()
	for _, base := range []string{"sP-SMR", "sP-SMR/index"} {
		off := kcps[base+" ckpt=off"]
		for _, iv := range []string{"ckpt=1k", "ckpt=8k", "ckpt=64k"} {
			if on := kcps[base+" "+iv]; off > 0 && on > 0 {
				fmt.Printf("  %-14s %-9s checkpointed/off throughput: %.2fx\n", base, iv, on/off)
			}
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

// runObs runs the observability-overhead ablation: pipeline-stage
// tracing off / sampled 1-in-1024 / every command, on the scan and
// index engines under the 50/50 read/update kvstore workload. Traced
// rows print the per-stage latency breakdown table; the JSON rows
// carry the stage histograms plus the full registry snapshot. The
// headline number is the sampled/off throughput ratio — sampling is
// supposed to be free (≤3%, the make-verify gate), trace=all is the
// measured worst case.
func runObs(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Observability ablation — pipeline-stage tracing overhead\n")
	fmt.Printf("(sP-SMR, 50%%/50%% read/update kvstore, %d workers; tracing\n", threads)
	fmt.Println(" off / 1-in-1024 sampled / every command x scan/index engines)")
	kcps := map[string]float64{}
	var results []*bench.Result
	for _, setup := range experiment.ObsAblationSetups(scale, threads) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("obs %v %s: %w", setup.Scheduler, setup.Tag, err)
		}
		kcps[res.Technique] = res.Kcps()
		results = append(results, res)
		fmt.Println(" ", res)
		if res.Breakdown != "" {
			fmt.Println(indent(res.Breakdown, "    "))
		}
	}
	fmt.Println()
	for _, base := range []string{"sP-SMR", "sP-SMR/index"} {
		off := kcps[base+" trace=off"]
		for _, row := range []string{"trace=1/1024", "trace=all"} {
			if on := kcps[base+" "+row]; off > 0 && on > 0 {
				fmt.Printf("  %-14s %-13s traced/off throughput: %.3fx\n", base, row, on/off)
			}
		}
	}
	for _, res := range results {
		printCDF(res)
	}
	if err := writeRowsJSON("BENCH_obs.json", results); err != nil {
		return err
	}
	fmt.Println("  wrote BENCH_obs.json")
	fmt.Println()
	return nil
}

// runObsGate is the make-verify overhead gate: best-of-3 throughput
// with sampled (1/1024) tracing must stay within 3% of best-of-3 with
// tracing off, on the e2e sP-SMR/index kv workload. Best-of-N damps
// scheduler noise; a real regression (a hot-path stamp that allocates
// or takes a lock) shows up far above 3%.
func runObsGate(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Observability gate — sampled tracing ≤3%% overhead (best of 3)\n")
	best := func(sample int) (float64, error) {
		var b float64
		for i := 0; i < 3; i++ {
			setup := experiment.ObsGateSetup(scale, threads, sample)
			res, err := experiment.RunKV(setup)
			if err != nil {
				return 0, err
			}
			fmt.Println(" ", res)
			if k := res.Kcps(); k > b {
				b = k
			}
		}
		return b, nil
	}
	off, err := best(-1)
	if err != nil {
		return fmt.Errorf("obsgate trace=off: %w", err)
	}
	sampled, err := best(0)
	if err != nil {
		return fmt.Errorf("obsgate trace=1/1024: %w", err)
	}
	if off <= 0 {
		return fmt.Errorf("obsgate: zero baseline throughput")
	}
	ratio := sampled / off
	fmt.Printf("  best-of-3: off=%.1f Kcps  sampled=%.1f Kcps  ratio=%.3fx\n", off, sampled, ratio)
	if ratio < 0.97 {
		return fmt.Errorf("obsgate: sampled tracing costs %.1f%% throughput (limit 3%%)", 100*(1-ratio))
	}
	fmt.Println("  PASS: sampled tracing within the 3% budget")
	fmt.Println()
	return nil
}

// runFlightGate is the flight-recorder overhead gate: best-of-3
// throughput with the always-on black-box journal (the default) must
// stay within 3% of best-of-3 with the journal off, on the same e2e
// sP-SMR/index kv workload the obs gate uses. The journal is supposed
// to be cheap enough to never turn off — this is where that claim is
// enforced.
func runFlightGate(scale Scale, threads int) error {
	fmt.Println("==============================================================")
	fmt.Printf("Flight gate — always-on journal ≤3%% overhead (best of 3)\n")
	best := func(journalOff bool) (float64, error) {
		var b float64
		for i := 0; i < 3; i++ {
			setup := experiment.FlightGateSetup(scale, threads, journalOff)
			res, err := experiment.RunKV(setup)
			if err != nil {
				return 0, err
			}
			fmt.Println(" ", res)
			if k := res.Kcps(); k > b {
				b = k
			}
		}
		return b, nil
	}
	off, err := best(true)
	if err != nil {
		return fmt.Errorf("flightgate journal=off: %w", err)
	}
	on, err := best(false)
	if err != nil {
		return fmt.Errorf("flightgate journal=on: %w", err)
	}
	if off <= 0 {
		return fmt.Errorf("flightgate: zero baseline throughput")
	}
	ratio := on / off
	fmt.Printf("  best-of-3: off=%.1f Kcps  on=%.1f Kcps  ratio=%.3fx\n", off, on, ratio)
	if ratio < 0.97 {
		return fmt.Errorf("flightgate: journal costs %.1f%% throughput (limit 3%%)", 100*(1-ratio))
	}
	fmt.Println("  PASS: always-on journal within the 3% budget")
	fmt.Println()
	return nil
}

// indent prefixes every line of s (multi-line tables under a row).
func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n"+prefix)
}

// Scale aliases the experiment scale for brevity.
type Scale = experiment.Scale

func runTable1() error {
	fmt.Println("==============================================================")
	experiment.PrintTable1(os.Stdout)
	fmt.Println()
	return nil
}

func printCDF(res *bench.Result) {
	if res.Latency == nil || res.Latency.Count() == 0 {
		return
	}
	fmt.Printf("  %-10s CDF: p50=%v p90=%v p99=%v p99.9=%v max=%v\n",
		res.Technique,
		res.Latency.Quantile(0.50).Round(10*time.Microsecond),
		res.Latency.Quantile(0.90).Round(10*time.Microsecond),
		res.Latency.Quantile(0.99).Round(10*time.Microsecond),
		res.Latency.Quantile(0.999).Round(10*time.Microsecond),
		res.Latency.Max().Round(10*time.Microsecond))
}

func runFig3(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 3 — performance of independent commands (reads only)")
	fmt.Println("paper: no-rep 1.22X  SMR 1X  sP-SMR 1.14X  P-SMR 3.15X  BDB 0.2X")
	var results []*bench.Result
	for _, setup := range experiment.Fig3Setups(scale) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("fig3 %v: %w", setup.Technique, err)
		}
		results = append(results, res)
		fmt.Println(" ", res)
	}
	fmt.Println()
	fmt.Print(bench.Table(results, "SMR"))
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

func runFig4(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 4 — performance of dependent commands (inserts+deletes)")
	fmt.Println("paper: no-rep 0.32X  SMR 1X  sP-SMR 0.28X  P-SMR 0.5X  BDB 0.12X")
	var results []*bench.Result
	for _, setup := range experiment.Fig4Setups(scale) {
		res, err := experiment.RunKV(setup)
		if err != nil {
			return fmt.Errorf("fig4 %v: %w", setup.Technique, err)
		}
		results = append(results, res)
		fmt.Println(" ", res)
	}
	fmt.Println()
	fmt.Print(bench.Table(results, "SMR"))
	for _, res := range results {
		printCDF(res)
	}
	fmt.Println()
	return nil
}

func runFig5(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 5 — scalability with threads (top: Kcps, bottom: per-thread)")
	fmt.Println("paper: only P-SMR gains from threads on independent commands;")
	fmt.Println("       all techniques degrade on dependent commands (BDB peaks at 4)")
	for _, p := range experiment.Fig5Points() {
		res, err := experiment.RunFig5Point(scale, p)
		if err != nil {
			return fmt.Errorf("fig5 %+v: %w", p, err)
		}
		kind := "independent"
		if p.Dependent {
			kind = "dependent"
		}
		fmt.Printf("  %-11s %-8s thr=%d  %9.1f Kcps  %8.1f Kcps/thread  cpu=%5.1f%%\n",
			kind, res.Technique, p.Threads, res.Kcps(), res.Kcps()/float64(p.Threads), res.CPUPercent)
	}
	fmt.Println()
	return nil
}

func runFig6(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 6 — mixed workloads: P-SMR(8) vs SMR by % dependent (log x)")
	fmt.Println("paper: P-SMR above SMR up to ~10% dependent commands; SMR flat")
	for _, tech := range []experiment.Technique{experiment.PSMR, experiment.SMR} {
		for _, pct := range experiment.Fig6Percentages() {
			res, err := experiment.RunFig6Point(scale, tech, pct)
			if err != nil {
				return fmt.Errorf("fig6 %v %.3f%%: %w", tech, pct, err)
			}
			fmt.Printf("  %-7s dep=%6.3f%%  %9.1f Kcps  mean=%v\n",
				res.Technique, pct, res.Kcps(), res.Latency.Mean().Round(10*time.Microsecond))
		}
	}
	fmt.Println()
	return nil
}

func runFig7(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 7 — skewed workloads (50% reads / 50% updates)")
	fmt.Println("paper: uniform P-SMR scales to core capacity; Zipf P-SMR bounded by")
	fmt.Println("       the most-loaded group; sP-SMR bounded by the scheduler")
	for _, zipfian := range []bool{false, true} {
		for _, tech := range []experiment.Technique{experiment.PSMR, experiment.SPSMR} {
			for _, threads := range []int{1, 2, 4, 6, 8} {
				res, err := experiment.RunFig7Point(scale, tech, threads, zipfian)
				if err != nil {
					return fmt.Errorf("fig7: %w", err)
				}
				fmt.Printf("  %-16s thr=%d  %9.1f Kcps  %8.1f Kcps/thread\n",
					res.Technique, threads, res.Kcps(), res.Kcps()/float64(threads))
			}
		}
	}
	fmt.Println()
	return nil
}

func runFig8(scale Scale) error {
	fmt.Println("==============================================================")
	fmt.Println("Figure 8 — NetFS 1 KB reads and writes (8 path ranges, lz4)")
	fmt.Println("paper: reads  SMR 1X  sP-SMR 1.07X  P-SMR 3.13X")
	fmt.Println("       writes SMR 1X  sP-SMR 1.04X  P-SMR 2.97X")
	for _, write := range []bool{false, true} {
		op := "reads"
		if write {
			op = "writes"
		}
		var results []*bench.Result
		for _, tech := range []experiment.Technique{experiment.SMR, experiment.SPSMR, experiment.PSMR} {
			res, err := experiment.RunFig8Point(scale, tech, write)
			if err != nil {
				return fmt.Errorf("fig8 %s %v: %w", op, tech, err)
			}
			results = append(results, res)
		}
		fmt.Printf("  -- %s --\n", op)
		fmt.Print(bench.Table(results, "SMR"))
		for _, res := range results {
			printCDF(res)
		}
	}
	fmt.Println()
	return nil
}
