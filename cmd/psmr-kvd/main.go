// Command psmr-kvd hosts a replicated key-value store over TCP: all
// cluster roles (per-group Paxos coordinators and acceptors, the
// replicas and their worker threads) run in this process, reachable by
// remote psmr-kv clients.
//
// Usage:
//
//	psmr-kvd -listen 127.0.0.1:7400 -mode psmr -workers 8 -keys 100000
//
// Remote clients need only the listen address, the mode and the worker
// count (client and server proxies must agree on the multiprogramming
// level, paper §IV-D).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/obs"
	"github.com/psmr/psmr/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7400", "TCP host:port to serve on")
		mode    = flag.String("mode", "psmr", "replication mode: psmr|spsmr|smr")
		sched   = flag.String("sched", "scan", "spsmr scheduling engine: scan|index")
		workers = flag.Int("workers", 8, "worker threads per replica (MPL)")
		keys    = flag.Int("keys", 100_000, "preloaded database keys")
		opt     = flag.Bool("optimistic", false, "spsmr only: speculate on the optimistic stream, reconcile on consensus")
		ckpt    = flag.Int("checkpoint", 0, "coordinated checkpoint interval in decided commands (0 = off; single-ordered-stream modes only); SIGHUP then crash-restarts replica 1 from its peer's snapshot")
		proxies = flag.Int("proxies", 0, "ingress proxy-proposer tier size (0 = clients submit to coordinators directly); clients must pass the same -proxies")
		pbatch  = flag.Int("proxy-batch", 0, "commands per sealed proxy batch (0 = default)")
		pdelay  = flag.Duration("proxy-delay", 0, "max delay before a partial proxy batch seals (0 = default)")
		fanout  = flag.Int("fanout", 0, "decided-value delivery stripes per group (0 = coordinator broadcasts directly)")
		metrics = flag.String("metrics-addr", "", "serve live metrics on this host:port — /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof (empty = off)")
		tsample = flag.Int("trace-sample", 0, "pipeline-stage trace sampling: 0 = 1 in 1024, 1 = every command, -1 = off")
		journal = flag.Int("journal-events", 0, "flight-recorder journal size in events: 0 = default (4096), -1 = off; dump with SIGQUIT or GET /debug/flight")
	)
	flag.Parse()
	if err := run(*listen, *mode, *sched, *workers, *keys, *opt, *ckpt, *proxies, *pbatch, *pdelay, *fanout, *metrics, *tsample, *journal); err != nil {
		log.Fatal(err)
	}
}

func run(listen, modeName, schedName string, workers, keys int, optimistic bool, ckptInterval, proxies, proxyBatch int, proxyDelay time.Duration, fanout int, metricsAddr string, traceSample, journalEvents int) error {
	var mode psmr.Mode
	switch modeName {
	case "psmr":
		mode = psmr.ModePSMR
	case "spsmr":
		mode = psmr.ModeSPSMR
	case "smr":
		mode = psmr.ModeSMR
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var schedKind psmr.SchedulerKind
	switch schedName {
	case "scan":
		schedKind = psmr.SchedScan
	case "index":
		schedKind = psmr.SchedIndex
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}

	node, err := transport.NewTCPNode(listen)
	if err != nil {
		return err
	}
	defer node.Close()

	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     mode,
		Workers:  workers,
		Replicas: 2,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(keys)
			return st
		},
		Spec:          kvstore.Spec(),
		Scheduler:     schedKind,
		Optimistic:    optimistic,
		Checkpoint:    psmr.CheckpointConfig{Interval: ckptInterval},
		Proxies:       proxies,
		ProxyBatch:    proxyBatch,
		ProxyDelay:    proxyDelay,
		FanoutDegree:  fanout,
		Transport:     node,
		TraceSample:   traceSample,
		JournalEvents: journalEvents,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	if metricsAddr != "" {
		mux := obs.ServeMux(cluster.Registry())
		if f := cluster.Flight(); f != nil {
			mux.Handle("/debug/flight", f.Handler())
		}
		srv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Println("psmr-kvd: metrics server:", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("psmr-kvd: metrics on http://%s/metrics (also /debug/vars, /debug/pprof, /debug/flight)\n", metricsAddr)
	}

	fmt.Printf("psmr-kvd: %s cluster on %s — %d workers, %d groups, %d keys preloaded\n",
		mode, node.HostPort(), workers, len(cluster.Groups()), keys)
	fmt.Println("psmr-kvd: connect with: psmr-kv -server", node.HostPort(),
		"-workers", workers, "get 42")
	if ckptInterval > 0 {
		fmt.Printf("psmr-kvd: checkpointing every %d decided commands; SIGHUP crash-restarts replica 1 from its peer\n", ckptInterval)
	}
	if proxies > 0 {
		fmt.Printf("psmr-kvd: %d ingress proxies; clients must pass -proxies %d\n", proxies, proxies)
	}
	if fanout > 0 {
		fmt.Printf("psmr-kvd: decided values striped over %d relays per group\n", fanout)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP, syscall.SIGQUIT)
	for s := range sig {
		if s == syscall.SIGQUIT {
			// Black-box dump: cut a flight bundle and render it to
			// stderr, then keep serving (the airplane analogue — read
			// the recorder without crashing the plane).
			f := cluster.Flight()
			if f == nil {
				fmt.Println("psmr-kvd: SIGQUIT ignored (flight recorder off: -journal-events -1)")
				continue
			}
			f.Dump("SIGQUIT operator dump")
			f.WriteText(os.Stderr)
			continue
		}
		if s != syscall.SIGHUP {
			break
		}
		// Restart-from-peer demo: kill replica 1, then rebuild it from
		// replica 0's newest snapshot plus the retained decided suffix.
		if ckptInterval <= 0 {
			fmt.Println("psmr-kvd: SIGHUP ignored (run with -checkpoint N to enable restart-from-peer)")
			continue
		}
		fmt.Println("psmr-kvd: SIGHUP — crashing replica 1 and restarting it from its peer")
		cluster.CrashReplica(1)
		if err := cluster.RestartReplica(1); err != nil {
			fmt.Println("psmr-kvd: restart failed:", err)
			continue
		}
		for i, c := range cluster.CheckpointCounters() {
			fmt.Printf("psmr-kvd: replica %d checkpoints: %v\n", i, c)
		}
	}
	fmt.Println("psmr-kvd: shutting down")
	return nil
}
