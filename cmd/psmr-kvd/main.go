// Command psmr-kvd hosts a replicated key-value store over TCP: all
// cluster roles (per-group Paxos coordinators and acceptors, the
// replicas and their worker threads) run in this process, reachable by
// remote psmr-kv clients.
//
// Usage:
//
//	psmr-kvd -listen 127.0.0.1:7400 -mode psmr -workers 8 -keys 100000
//
// Remote clients need only the listen address, the mode and the worker
// count (client and server proxies must agree on the multiprogramming
// level, paper §IV-D).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/transport"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7400", "TCP host:port to serve on")
		mode    = flag.String("mode", "psmr", "replication mode: psmr|spsmr|smr")
		sched   = flag.String("sched", "scan", "spsmr scheduling engine: scan|index")
		workers = flag.Int("workers", 8, "worker threads per replica (MPL)")
		keys    = flag.Int("keys", 100_000, "preloaded database keys")
		opt     = flag.Bool("optimistic", false, "spsmr only: speculate on the optimistic stream, reconcile on consensus")
	)
	flag.Parse()
	if err := run(*listen, *mode, *sched, *workers, *keys, *opt); err != nil {
		log.Fatal(err)
	}
}

func run(listen, modeName, schedName string, workers, keys int, optimistic bool) error {
	var mode psmr.Mode
	switch modeName {
	case "psmr":
		mode = psmr.ModePSMR
	case "spsmr":
		mode = psmr.ModeSPSMR
	case "smr":
		mode = psmr.ModeSMR
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	var schedKind psmr.SchedulerKind
	switch schedName {
	case "scan":
		schedKind = psmr.SchedScan
	case "index":
		schedKind = psmr.SchedIndex
	default:
		return fmt.Errorf("unknown scheduler %q", schedName)
	}

	node, err := transport.NewTCPNode(listen)
	if err != nil {
		return err
	}
	defer node.Close()

	cluster, err := psmr.StartCluster(psmr.Config{
		Mode:     mode,
		Workers:  workers,
		Replicas: 2,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(keys)
			return st
		},
		Spec:       kvstore.Spec(),
		Scheduler:  schedKind,
		Optimistic: optimistic,
		Transport:  node,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	fmt.Printf("psmr-kvd: %s cluster on %s — %d workers, %d groups, %d keys preloaded\n",
		mode, node.HostPort(), workers, len(cluster.Groups()), keys)
	fmt.Println("psmr-kvd: connect with: psmr-kv -server", node.HostPort(),
		"-workers", workers, "get 42")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("psmr-kvd: shutting down")
	return nil
}
