// Command psmr-kv is the remote CLI client for a psmr-kvd daemon.
//
// Usage:
//
//	psmr-kv -server 127.0.0.1:7400 -workers 8 get 42
//	psmr-kv -server 127.0.0.1:7400 -workers 8 put 42 hello
//	psmr-kv -server 127.0.0.1:7400 -workers 8 update 42 world
//	psmr-kv -server 127.0.0.1:7400 -workers 8 del 42
//	psmr-kv -server 127.0.0.1:7400 -workers 8 transfer 42 43 5
//	psmr-kv -server 127.0.0.1:7400 -workers 8 mread 42 43 44
//
// The -workers flag must match the daemon's multiprogramming level:
// client and server proxies agree on it (paper §IV-D), since the
// Command-to-Groups function is computed on the client.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/core"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
	"github.com/psmr/psmr/internal/transport"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:7400", "psmr-kvd host:port")
		workers = flag.Int("workers", 8, "daemon's worker count (MPL)")
		mode    = flag.String("mode", "psmr", "daemon's mode: psmr|spsmr|smr")
		proxies = flag.Int("proxies", 0, "daemon's ingress proxy count (must match psmr-kvd -proxies; 0 = submit to coordinators directly)")
		id      = flag.Uint64("id", uint64(os.Getpid()), "client id (unique per client)")
		repeat  = flag.Int("n", 1, "repeat the operation N times (iterations after the first print nothing; pair with -stats)")
		stats   = flag.Bool("stats", false, "print the client-observed latency histogram (count/mean/p50/p99/max) to stderr on exit")
	)
	flag.Parse()
	if err := run(*server, *workers, *mode, *proxies, *id, *repeat, *stats, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

func run(server string, workers int, mode string, proxies int, id uint64, repeat int, stats bool, args []string) error {
	if len(args) < 2 {
		return errors.New("usage: psmr-kv [flags] get|put|update|del KEY [VALUE] | transfer FROM TO AMOUNT | mread KEY...")
	}
	verb := args[0]
	key, err := strconv.ParseUint(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("key %q: %w", args[1], err)
	}

	// The daemon's group layout follows from mode and worker count:
	// k parallel groups + 1 serial for P-SMR (k > 1), one group
	// otherwise. Coordinator endpoints use the fixed g<i>/coord0 names.
	nGroups := 1
	if mode == "psmr" && workers > 1 {
		nGroups = workers + 1
	}
	if mode == "smr" {
		workers = 1
	}

	node, err := transport.NewTCPNode("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer node.Close()

	groups := make([]multicast.GroupConfig, 0, nGroups)
	for g := 0; g < nGroups; g++ {
		groups = append(groups, multicast.GroupConfig{
			ID: uint32(g),
			Coordinators: []transport.Addr{
				transport.Addr(fmt.Sprintf("%s/g%d/coord0", server, g)),
			},
		})
	}
	cg, err := cdep.Compile(kvstore.Spec(), workers)
	if err != nil {
		return err
	}
	sender := multicast.NewSender(node, groups)
	if proxies > 0 {
		// Submit through the daemon's ingress proxy tier; the endpoint
		// names mirror psmr.ProxyAddr so client and daemon agree.
		addrs := make([]transport.Addr, 0, proxies)
		for i := 0; i < proxies; i++ {
			addrs = append(addrs, transport.Addr(fmt.Sprintf("%s/%s", server, psmr.ProxyAddr(i))))
		}
		sender.UseProxies(addrs)
	}
	client, err := core.NewClient(core.ClientConfig{
		ID:        id,
		Sender:    sender,
		CG:        cg,
		Transport: node,
		ReplyAddr: node.Addr(fmt.Sprintf("client/%d", id)),
	})
	if err != nil {
		return err
	}
	defer client.Close()

	// Every Invoke is timed into the latency histogram; -stats renders
	// it on exit. Iterations past the first run the same command with
	// output suppressed, so `-n 1000 -stats` measures a steady stream.
	var hist bench.Histogram
	invoke := func(cmd command.ID, input []byte) ([]byte, error) {
		t0 := time.Now()
		out, err := client.Invoke(cmd, input)
		if err == nil {
			hist.Record(time.Since(t0))
		}
		return out, err
	}
	if repeat < 1 {
		repeat = 1
	}
	for i := 0; i < repeat; i++ {
		w := io.Writer(os.Stdout)
		if i > 0 {
			w = io.Discard
		}
		if err := doVerb(invoke, verb, key, args, w); err != nil {
			return err
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr, "latency: count=%d mean=%s p50=%s p99=%s max=%s\n",
			hist.Count(), hist.Mean(), hist.Quantile(0.50), hist.Quantile(0.99), hist.Max())
	}
	return nil
}

// doVerb runs one client operation, writing human output to w.
func doVerb(invoke func(command.ID, []byte) ([]byte, error), verb string, key uint64, args []string, w io.Writer) error {
	switch verb {
	case "get":
		out, err := invoke(kvstore.CmdRead, kvstore.EncodeKey(key))
		if err != nil {
			return err
		}
		value, code := kvstore.DecodeReadOutput(out)
		if code != kvstore.OK {
			return fmt.Errorf("key %d not found", key)
		}
		fmt.Fprintf(w, "%s\n", value)
	case "put", "update":
		if len(args) < 3 {
			return fmt.Errorf("%s needs a value", verb)
		}
		cmd := kvstore.CmdInsert
		if verb == "update" {
			cmd = kvstore.CmdUpdate
		}
		out, err := invoke(cmd, kvstore.EncodeKeyValue(key, []byte(args[2])))
		if err != nil {
			return err
		}
		if out[0] != kvstore.OK {
			return fmt.Errorf("%s %d: error code %d", verb, key, out[0])
		}
		fmt.Fprintln(w, "OK")
	case "del":
		out, err := invoke(kvstore.CmdDelete, kvstore.EncodeKey(key))
		if err != nil {
			return err
		}
		if out[0] != kvstore.OK {
			return fmt.Errorf("key %d not found", key)
		}
		fmt.Fprintln(w, "OK")
	case "transfer":
		// Two-key transaction: multicast to the union of both keys'
		// groups (multi-key C-G), executed once after the owners
		// rendezvous.
		if len(args) < 4 {
			return errors.New("transfer needs FROM TO AMOUNT")
		}
		to, err := strconv.ParseUint(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("to %q: %w", args[2], err)
		}
		amount, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("amount %q: %w", args[3], err)
		}
		out, err := invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(key, to, amount))
		if err != nil {
			return err
		}
		if out[0] != kvstore.OK {
			return fmt.Errorf("transfer %d→%d: error code %d", key, to, out[0])
		}
		fmt.Fprintln(w, "OK")
	case "mread":
		// Snapshot read over a key set: read-only multi-key routing —
		// the schedulers latch every key's reader set, so the values
		// form one atomic observation without parking any owner.
		keys := []uint64{key}
		for _, a := range args[2:] {
			k, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				return fmt.Errorf("key %q: %w", a, err)
			}
			keys = append(keys, k)
		}
		out, err := invoke(kvstore.CmdMultiRead, kvstore.EncodeMultiRead(keys...))
		if err != nil {
			return err
		}
		values, codes, ok := kvstore.DecodeMultiReadOutput(out)
		if !ok {
			return fmt.Errorf("mread: malformed response (input error code %d)", out[0])
		}
		for i, k := range keys {
			if codes[i] != kvstore.OK {
				fmt.Fprintf(w, "%d: not found\n", k)
				continue
			}
			fmt.Fprintf(w, "%d: %s\n", k, values[i])
		}
	default:
		return fmt.Errorf("unknown verb %q (get|put|update|del|transfer|mread)", verb)
	}
	return nil
}
