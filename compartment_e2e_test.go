package psmr_test

// End-to-end compartmentalized ordering: the proxy-proposer tier, the
// striped decided-value fan-out and the per-subset multicast groups
// running inside full replicated clusters. The tests pin the three
// claims the refactor makes: proxy batching compresses the leader's
// ingress (frames per command well below 1), the tier fails over —
// a dead proxy is routed around and a fully dead tier surfaces as a
// distinct client error instead of a hang — and none of it changes
// what the replicas compute: fingerprints stay byte-identical to the
// direct-submission deployment, including under speculation and
// crash-restart recovery.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/cdep"
	"github.com/psmr/psmr/internal/command"
	"github.com/psmr/psmr/internal/core"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/multicast"
)

// withCompartment switches on the ordering-layer tiers: p ingress
// proxies sealing at batch commands (or after 1ms) and fan delivery
// stripes per group.
func withCompartment(p, batch, fan int) func(*psmr.Config) {
	return func(cfg *psmr.Config) {
		cfg.Proxies = p
		cfg.ProxyBatch = batch
		cfg.ProxyDelay = time.Millisecond
		cfg.FanoutDegree = fan
	}
}

// TestProxyFrameCompressionE2E pins the acceptance bar for the proxy
// tier at the cluster level: with one proxy sealing at 8 commands and
// a pipelined client, the leader's inbound frames per command must
// drop at least 4x below direct submission's 1.0. The seal is
// count-driven (64 async submits fill 8 batches of 8 long before the
// 500ms delay can fire), so the assertion is deterministic.
func TestProxyFrameCompressionE2E(t *testing.T) {
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:      psmr.ModeSPSMR,
		Workers:   2,
		Scheduler: psmr.SchedIndex,
		Spec:      kvstore.Spec(),
		Proxies:   1,
		ProxyBatch: 8,
		ProxyDelay: 500 * time.Millisecond,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(32)
			return st
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })

	const ops = 64 // multiple of ProxyBatch: every batch seals on count
	calls := make([]*core.Call, ops)
	for i := 0; i < ops; i++ {
		val := binary.LittleEndian.AppendUint64(nil, uint64(i))
		call, err := inv.Submit(kvstore.CmdUpdate, kvstore.EncodeKeyValue(uint64(i%32), val))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		calls[i] = call
	}
	for i, call := range calls {
		out, err := call.Wait()
		if err != nil || out[0] != kvstore.OK {
			t.Fatalf("op %d: %v %v", i, err, out)
		}
	}

	oc := cl.OrderingCounters()
	if len(oc.Proxies) != 1 {
		t.Fatalf("proxy counters: %+v", oc.Proxies)
	}
	if q, b := oc.Proxies[0].Queued, oc.Proxies[0].Batches; q != ops || b != ops/8 {
		t.Fatalf("proxy sealed %d commands into %d batches, want %d into %d", q, b, ops, ops/8)
	}
	if got := oc.Leader.InboundCommands; got < ops {
		t.Fatalf("leader admitted %d commands, want >= %d", got, ops)
	}
	if fpc := oc.Leader.FramesPerCommand(); fpc > 0.25 {
		t.Fatalf("leader frames per command = %.3f, want <= 0.25 (>= 4x compression): %+v", fpc, oc.Leader)
	}
}

// TestProxyFailoverE2E pins the tier's failure semantics: a dead proxy
// is routed around without client-visible errors (the sender rotates
// to a survivor on the synchronous send failure), and with every proxy
// dead, Submit fails fast with the distinct ErrProxyDown instead of
// pending forever on retransmission that cannot reach a coordinator.
func TestProxyFailoverE2E(t *testing.T) {
	cl, err := psmr.StartCluster(psmr.Config{
		Mode:       psmr.ModeSPSMR,
		Workers:    2,
		Scheduler:  psmr.SchedIndex,
		Spec:       kvstore.Spec(),
		Proxies:    2,
		ProxyBatch: 4,
		ProxyDelay: time.Millisecond,
		NewService: func() command.Service {
			st := kvstore.New()
			st.Preload(16)
			return st
		},
	})
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })

	inv, err := cl.NewClient()
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { _ = inv.Close() })

	for i := 0; i < 8; i++ {
		if out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(1, 2, 1)); err != nil || out[0] != kvstore.OK {
			t.Fatalf("transfer %d: %v %v", i, err, out)
		}
	}

	// One proxy dies: the client's next submits hit the dead endpoint,
	// rotate to the survivor and succeed — no error surfaces.
	cl.CrashProxy(0)
	for i := 0; i < 8; i++ {
		if out, err := inv.Invoke(kvstore.CmdTransfer, kvstore.EncodeTransfer(2, 3, 1)); err != nil || out[0] != kvstore.OK {
			t.Fatalf("post-crash transfer %d: %v %v", i, err, out)
		}
	}
	// Exactly-once accounting across the failover: key 3 started at 3
	// and received 8.
	out, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(3))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if value, code := kvstore.DecodeReadOutput(out); code != kvstore.OK ||
		binary.LittleEndian.Uint64(value) != 11 {
		t.Fatalf("key 3 balance = %d, want 11", binary.LittleEndian.Uint64(value))
	}

	// The whole tier dies: submits fail fast and distinctly.
	cl.CrashProxy(1)
	if _, err := inv.Submit(kvstore.CmdRead, kvstore.EncodeKey(1)); !errors.Is(err, multicast.ErrProxyDown) {
		t.Fatalf("submit with dead tier = %v, want ErrProxyDown", err)
	}
}

// TestSubsetGroupsTransferConvergence runs the two-key transfer
// workload through per-subset multicast groups: 4 workers with a
// dedicated group per worker pair, so every transfer rides its own
// pair's group instead of the shared serial group. Money conservation
// and byte-identical replica fingerprints catch any lost or reordered
// serialization; the proxied variant stacks the full compartment
// (proxy tier + fan-out) on top of the subset routing.
func TestSubsetGroupsTransferConvergence(t *testing.T) {
	const (
		keys    = 64
		workers = 4
	)
	variants := []struct {
		name   string
		mutate []func(*psmr.Config)
	}{
		{name: "subsets"},
		{name: "subsets-proxied-fanout", mutate: []func(*psmr.Config){withCompartment(2, 4, 2)}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			var (
				mu     sync.Mutex
				stores []*markedStore
			)
			cfg := psmr.Config{
				Mode:         psmr.ModePSMR,
				Workers:      workers,
				Spec:         kvstore.Spec(),
				SubsetGroups: cdep.AllPairs(workers),
				NewService: func() command.Service {
					mu.Lock()
					defer mu.Unlock()
					st := kvstore.New()
					st.Preload(keys)
					ms := &markedStore{Store: st}
					stores = append(stores, ms)
					return ms
				},
			}
			for _, m := range v.mutate {
				m(&cfg)
			}
			cl, err := psmr.StartCluster(cfg)
			if err != nil {
				t.Fatalf("StartCluster: %v", err)
			}
			t.Cleanup(func() { _ = cl.Close() })

			// 4 worker groups + 6 pair groups + 1 serial.
			if got := len(cl.Groups()); got != workers+6+1 {
				t.Fatalf("cluster has %d groups, want %d", got, workers+6+1)
			}

			clients, ops := 3, 40
			if raceEnabled {
				clients, ops = 2, 15
			}
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for c := 0; c < clients; c++ {
				inv, err := cl.NewClient()
				if err != nil {
					t.Fatalf("NewClient: %v", err)
				}
				t.Cleanup(func() { _ = inv.Close() })
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c + 1)))
					for i := 0; i < ops; i++ {
						from := rng.Uint64() % keys
						to := rng.Uint64() % keys
						out, err := inv.Invoke(kvstore.CmdTransfer,
							kvstore.EncodeTransfer(from, to, rng.Uint64()%10))
						if err != nil {
							errCh <- fmt.Errorf("client %d transfer %d: %w", c, i, err)
							return
						}
						if out[0] != kvstore.OK {
							errCh <- fmt.Errorf("client %d transfer(%d→%d) code %d", c, from, to, out[0])
							return
						}
						if i%4 == 0 {
							if _, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(from)); err != nil {
								errCh <- fmt.Errorf("client %d read: %w", c, err)
								return
							}
						}
					}
					errCh <- nil
				}(c)
			}
			wg.Wait()
			for c := 0; c < clients; c++ {
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			}

			if len(v.mutate) > 0 {
				// The frames-per-command assertion below needs at least
				// some batches to seal on COUNT: the closed-loop clients
				// above rarely coincide inside one proxy's 1ms seal
				// window (especially under the race detector), so their
				// batches may all carry a single command. A pipelined
				// burst of same-pair transfers — every frame rides pair
				// group {1,2} — fills batches deterministically, as in
				// TestProxyFrameCompressionE2E.
				burst, err := cl.NewClient()
				if err != nil {
					t.Fatalf("NewClient: %v", err)
				}
				t.Cleanup(func() { _ = burst.Close() })
				calls := make([]*core.Call, 16)
				for i := range calls {
					call, err := burst.Submit(kvstore.CmdTransfer, kvstore.EncodeTransfer(1, 2, 1))
					if err != nil {
						t.Fatalf("burst submit %d: %v", i, err)
					}
					calls[i] = call
				}
				for i, call := range calls {
					if out, err := call.Wait(); err != nil || out[0] != kvstore.OK {
						t.Fatalf("burst transfer %d: %v %v", i, err, out)
					}
				}
			}

			// Conservation through the replicated path.
			inv, err := cl.NewClient()
			if err != nil {
				t.Fatalf("NewClient: %v", err)
			}
			t.Cleanup(func() { _ = inv.Close() })
			var sum, want uint64
			for k := uint64(0); k < keys; k++ {
				out, err := inv.Invoke(kvstore.CmdRead, kvstore.EncodeKey(k))
				if err != nil {
					t.Fatalf("read %d: %v", k, err)
				}
				value, code := kvstore.DecodeReadOutput(out)
				if code != kvstore.OK || len(value) < 8 {
					t.Fatalf("read %d: code %d", k, code)
				}
				sum += binary.LittleEndian.Uint64(value)
				want += k
			}
			if sum != want {
				t.Fatalf("balance sum = %d, want %d (transfer lost or duplicated value)", sum, want)
			}

			// Global-barrier marker, then byte-identical fingerprints.
			if out, err := inv.Invoke(kvstore.CmdInsert,
				kvstore.EncodeKeyValue(keys, kvstore.EncodeKey(keys))); err != nil || out[0] != kvstore.OK {
				t.Fatalf("marker insert: %v %v", err, out)
			}
			waitForCondition(t, 10*time.Second, func() bool {
				return stores[0].inserts.Load() >= 1 && stores[1].inserts.Load() >= 1
			}, func() string {
				return fmt.Sprintf("marker inserts executed: %d and %d",
					stores[0].inserts.Load(), stores[1].inserts.Load())
			})
			if f0, f1 := stores[0].Fingerprint(), stores[1].Fingerprint(); f0 != f1 {
				t.Fatalf("replicas did not converge: %x vs %x", f0, f1)
			}

			if len(v.mutate) > 0 {
				// The proxied variant must actually have compressed the
				// coordinators' ingress.
				oc := cl.OrderingCounters()
				if oc.Leader.InboundCommands == 0 {
					t.Fatalf("no commands flowed through the proxy tier: %+v", oc)
				}
				if fpc := oc.Leader.FramesPerCommand(); fpc >= 1 {
					t.Fatalf("proxied frames per command = %.3f, want < 1", fpc)
				}
			}
		})
	}
}

// TestCompartmentDeterminismVsDirect is the determinism acceptance
// bar: the proxy tier and delivery fan-out must not change the final
// state — the same deterministic workload converges to the SAME
// fingerprint plain direct-submission sP-SMR reaches, with and without
// speculation riding on top. Runs under `make race`.
func TestCompartmentDeterminismVsDirect(t *testing.T) {
	want, _ := runOptimisticWorkload(t, psmr.SchedIndex, false, 0, false)

	variants := []struct {
		name       string
		optimistic bool
		mutate     func(*psmr.Config)
	}{
		{name: "proxied", mutate: withCompartment(2, 4, 0)},
		{name: "proxied-fanout", mutate: withCompartment(2, 4, 2)},
		{name: "fanout-only", mutate: withCompartment(0, 0, 2)},
		{name: "optimistic-proxied-fanout", optimistic: true, mutate: withCompartment(2, 4, 2)},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			got, counters := runOptimisticWorkload(t, psmr.SchedIndex, v.optimistic, 0, false, v.mutate)
			if got != want {
				t.Fatalf("%s fingerprint %x != direct sP-SMR %x", v.name, got, want)
			}
			if v.optimistic && counters.Speculated == 0 {
				t.Fatalf("no speculation happened through the compartment: %v", counters)
			}
		})
	}
}

// TestCompartmentCrashRestart runs the full crash/restart recovery e2e
// (snapshot restore + decided-suffix replay, byte-identical
// convergence) with the proxy tier and fan-out stripes enabled, on the
// speculating engine — recovery must not care how ordering was fed.
func TestCompartmentCrashRestart(t *testing.T) {
	runCrashRestart(t, psmr.ModeSPSMR, psmr.SchedIndex, true, withCompartment(2, 4, 2))
}
