package psmr_test

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VII) at benchmark scale. Each Benchmark* family is one
// artifact; cmd/psmr-bench runs the same experiments at full scale and
// EXPERIMENTS.md records paper-vs-measured values.
//
// The benchmarks report Kcps (kilo-commands per second, the paper's
// unit), mean latency in ms, and server CPU% as custom metrics; b.N is
// decoupled from the measured interval (each iteration is one full
// timed run).

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	psmr "github.com/psmr/psmr"
	"github.com/psmr/psmr/internal/bench"
	"github.com/psmr/psmr/internal/experiment"
	"github.com/psmr/psmr/internal/kvstore"
	"github.com/psmr/psmr/internal/mvstore"
	"github.com/psmr/psmr/internal/netfs"
	"github.com/psmr/psmr/internal/workload"
)

// benchScale keeps benchmark iterations short.
func benchScale() experiment.Scale {
	s := experiment.QuickScale()
	return s
}

func reportResult(b *testing.B, res *bench.Result) {
	b.Helper()
	b.ReportMetric(res.Kcps(), "Kcps")
	if res.Latency != nil && res.Latency.Count() > 0 {
		b.ReportMetric(float64(res.Latency.Mean().Microseconds())/1000, "ms/op-mean")
	}
	b.ReportMetric(res.CPUPercent, "server-cpu%")
}

func runKVBench(b *testing.B, setup experiment.KVSetup) {
	b.Helper()
	var last *bench.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunKV(setup)
		if err != nil {
			b.Fatalf("RunKV: %v", err)
		}
		last = res
	}
	reportResult(b, last)
}

// BenchmarkTable1 prints the structural parallelism matrix (Table I).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiment.PrintTable1(discard{})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig3 — performance of independent commands (read-only KV):
// no-rep(2), SMR(1), sP-SMR(2), P-SMR(8), BDB(6).
func BenchmarkFig3(b *testing.B) {
	for _, setup := range experiment.Fig3Setups(benchScale()) {
		b.Run(fmt.Sprintf("%s-%dthr", setup.Technique, setup.Threads), func(b *testing.B) {
			runKVBench(b, setup)
		})
	}
}

// BenchmarkFig4 — performance of dependent commands (insert/delete
// KV): every technique at 1 thread, BDB at 4.
func BenchmarkFig4(b *testing.B) {
	for _, setup := range experiment.Fig4Setups(benchScale()) {
		b.Run(fmt.Sprintf("%s-%dthr", setup.Technique, setup.Threads), func(b *testing.B) {
			runKVBench(b, setup)
		})
	}
}

// BenchmarkFig5 — scalability with the number of threads, independent
// and dependent workloads.
func BenchmarkFig5(b *testing.B) {
	scale := benchScale()
	for _, p := range experiment.Fig5Points() {
		dep := "indep"
		if p.Dependent {
			dep = "dep"
		}
		b.Run(fmt.Sprintf("%s/%s-%dthr", dep, p.Technique, p.Threads), func(b *testing.B) {
			var last *bench.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunFig5Point(scale, p)
				if err != nil {
					b.Fatalf("RunFig5Point: %v", err)
				}
				last = res
			}
			reportResult(b, last)
			// The paper's bottom panels: per-thread normalised
			// throughput.
			b.ReportMetric(last.Kcps()/float64(p.Threads), "Kcps/thread")
		})
	}
}

// BenchmarkFig6 — mixed workloads: P-SMR(8) vs SMR as the percentage
// of dependent commands grows (log-scale sweep; the paper's breakeven
// is ~10%).
func BenchmarkFig6(b *testing.B) {
	scale := benchScale()
	for _, tech := range []experiment.Technique{experiment.PSMR, experiment.SMR} {
		for _, pct := range experiment.Fig6Percentages() {
			b.Run(fmt.Sprintf("%s/dep%g%%", tech, pct), func(b *testing.B) {
				var last *bench.Result
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunFig6Point(scale, tech, pct)
					if err != nil {
						b.Fatalf("RunFig6Point: %v", err)
					}
					last = res
				}
				reportResult(b, last)
			})
		}
	}
}

// BenchmarkFig7 — skewed workloads (50% reads / 50% updates): P-SMR vs
// sP-SMR under uniform and Zipf(1) key selection across threads.
func BenchmarkFig7(b *testing.B) {
	scale := benchScale()
	for _, zipfian := range []bool{false, true} {
		dist := "uniform"
		if zipfian {
			dist = "zipf"
		}
		for _, tech := range []experiment.Technique{experiment.PSMR, experiment.SPSMR} {
			for _, threads := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s-%dthr", dist, tech, threads), func(b *testing.B) {
					var last *bench.Result
					for i := 0; i < b.N; i++ {
						res, err := experiment.RunFig7Point(scale, tech, threads, zipfian)
						if err != nil {
							b.Fatalf("RunFig7Point: %v", err)
						}
						last = res
					}
					reportResult(b, last)
					b.ReportMetric(last.Kcps()/float64(threads), "Kcps/thread")
				})
			}
		}
	}
}

// BenchmarkFig8 — NetFS reads and writes: SMR, sP-SMR, P-SMR with 8
// path ranges, 1024-byte I/O, lz4-compressed payloads.
func BenchmarkFig8(b *testing.B) {
	scale := benchScale()
	for _, write := range []bool{false, true} {
		op := "reads"
		if write {
			op = "writes"
		}
		for _, tech := range []experiment.Technique{experiment.SMR, experiment.SPSMR, experiment.PSMR} {
			b.Run(fmt.Sprintf("%s/%s", op, tech), func(b *testing.B) {
				var last *bench.Result
				for i := 0; i < b.N; i++ {
					res, err := experiment.RunFig8Point(scale, tech, write)
					if err != nil {
						b.Fatalf("RunFig8Point: %v", err)
					}
					last = res
				}
				reportResult(b, last)
			})
		}
	}
}

// --- Ablations (design choices DESIGN.md §7 calls out) ---

// BenchmarkAblationMergeWeight varies the deterministic-merge weight
// (and matching skip slot rate): small weights stall busy streams
// behind idle ones, large weights add delivery burstiness.
func BenchmarkAblationMergeWeight(b *testing.B) {
	scale := benchScale()
	for _, weight := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("w%d", weight), func(b *testing.B) {
			setup := scale.KVAblationSetup(experiment.PSMR, 4)
			setup.MergeWeight = weight
			var last *bench.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunKVAblation(setup)
				if err != nil {
					b.Fatalf("RunKVAblation: %v", err)
				}
				last = res
			}
			reportResult(b, last)
		})
	}
}

// BenchmarkAblationBatchSize varies the consensus batch limit around
// the paper's 8 KB.
func BenchmarkAblationBatchSize(b *testing.B) {
	scale := benchScale()
	for _, size := range []int{1024, 8192, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			setup := scale.KVAblationSetup(experiment.PSMR, 4)
			setup.BatchMaxBytes = size
			var last *bench.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunKVAblation(setup)
				if err != nil {
					b.Fatalf("RunKVAblation: %v", err)
				}
				last = res
			}
			reportResult(b, last)
		})
	}
}

// BenchmarkAblationCoarseCG compares the paper's two C-G variants
// (§IV-C): the keyed C-G (updates spread across groups) against the
// coarse one (every update synchronous).
func BenchmarkAblationCoarseCG(b *testing.B) {
	scale := benchScale()
	for _, coarse := range []bool{false, true} {
		name := "keyed-cg"
		if coarse {
			name = "coarse-cg"
		}
		b.Run(name, func(b *testing.B) {
			setup := scale.KVAblationSetup(experiment.PSMR, 4)
			setup.CoarseCG = coarse
			setup.Gen = workload.KVReadUpdate
			var last *bench.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunKVAblation(setup)
				if err != nil {
					b.Fatalf("RunKVAblation: %v", err)
				}
				last = res
			}
			reportResult(b, last)
		})
	}
}

// BenchmarkAblationBarrierFanout measures synchronous-mode cost as the
// destination set grows: global commands with 1..8 workers.
func BenchmarkAblationBarrierFanout(b *testing.B) {
	scale := benchScale()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			setup := scale.KVAblationSetup(experiment.PSMR, workers)
			setup.Gen = workload.KVInsertsDeletes
			var last *bench.Result
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunKVAblation(setup)
				if err != nil {
					b.Fatalf("RunKVAblation: %v", err)
				}
				last = res
			}
			reportResult(b, last)
		})
	}
}

// BenchmarkAblationScheduler — the scan scheduler (the paper's sP-SMR
// bottleneck) against the index-based early scheduler, on sP-SMR and
// no-rep, update-heavy kvstore workload at 8 workers.
func BenchmarkAblationScheduler(b *testing.B) {
	scale := benchScale()
	for _, setup := range experiment.SchedAblationSetups(scale, 8) {
		name := fmt.Sprintf("%s-scan", setup.Technique)
		if setup.Scheduler == psmr.SchedIndex {
			name = fmt.Sprintf("%s-index", setup.Technique)
		}
		b.Run(name, func(b *testing.B) {
			runKVBench(b, setup)
		})
	}
}

// BenchmarkAblationMultiKey sweeps the barrier-vs-multikey C-G
// treatment of the two-key transfer across both scheduling engines
// (the `-exp multikey` rows at benchmark scale).
func BenchmarkAblationMultiKey(b *testing.B) {
	scale := benchScale()
	for _, setup := range experiment.MultiKeyAblationSetups(scale, 8) {
		engine := "scan"
		if setup.Scheduler == psmr.SchedIndex {
			engine = "index"
		}
		b.Run(fmt.Sprintf("%s-%s", setup.Tag, engine), func(b *testing.B) {
			runKVBench(b, setup)
		})
	}
}

// BenchmarkAblationCheckpoint sweeps the coordinated-checkpoint
// interval across both scheduling engines (the `-exp checkpoint` rows
// at benchmark scale): what crash-recoverability costs in throughput.
func BenchmarkAblationCheckpoint(b *testing.B) {
	scale := benchScale()
	for _, setup := range experiment.CheckpointAblationSetups(scale, 8) {
		engine := "scan"
		if setup.Scheduler == psmr.SchedIndex {
			engine = "index"
		}
		b.Run(fmt.Sprintf("%s-%s", setup.Tag, engine), func(b *testing.B) {
			runKVBench(b, setup)
		})
	}
}

// --- Rollback depth (mvstore abort cost vs store size) ---

// rollbackDepthFS builds a netfs service preloaded with `files` closed
// files spread over 8 directories — the stand-in for "store size" in
// the abort-cost measurement.
func rollbackDepthFS(files int) *netfs.Service {
	const t0 = int64(1_700_000_000_000_000_000)
	svc := netfs.NewService()
	fs := svc.FS()
	for d := 0; d < 8; d++ {
		fs.Mkdir(fmt.Sprintf("/data%d", d), 0o755, t0)
	}
	for i := 0; i < files; i++ {
		fd, _ := fs.Create(fmt.Sprintf("/data%d/file%d", i%8, i), 0o644, t0)
		fs.Release(fd)
	}
	return svc
}

// rollbackCycle speculates one single-inode netfs mutation (a utimens,
// which versions exactly one file record regardless of store size) at
// a fresh epoch and aborts it, returning the time spent in Abort
// alone. One touched key at every store size is precisely the
// O(touched-keys) claim under test; a structural command like create
// would add a copy-on-write of the parent directory's entry table —
// real work, but speculation cost, not abort cost.
func rollbackCycle(tb testing.TB, svc *netfs.Service, e mvstore.Epoch, input []byte) time.Duration {
	tb.Helper()
	if out := svc.SpeculateAt(e, netfs.CmdUtimens, input); len(out) == 0 || out[0] != byte(netfs.OK) {
		tb.Fatalf("speculative utimens failed: %v", out)
	}
	start := time.Now()
	svc.Abort(e)
	return time.Since(start)
}

func rollbackUtimensInput() []byte {
	args := binary.LittleEndian.AppendUint64(nil, 1_700_000_000_000_000_001)
	args = binary.LittleEndian.AppendUint64(args, 1_700_000_000_000_000_001)
	return netfs.EncodeInput("/data0/file0", args)
}

// BenchmarkRollbackDepth measures what aborting a speculative netfs
// command costs as the store grows 1k → 100k files. Under the old
// undo-record/clone-replay model the clone made this O(state); under
// mvstore the abort drops only the epoch's own uncommitted versions
// (O(touched keys)), so ns/abort must stay flat across store sizes.
func BenchmarkRollbackDepth(b *testing.B) {
	input := rollbackUtimensInput()
	for _, files := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("%dfiles", files), func(b *testing.B) {
			svc := rollbackDepthFS(files)
			b.ResetTimer()
			var inAbort time.Duration
			for i := 0; i < b.N; i++ {
				inAbort += rollbackCycle(b, svc, mvstore.Epoch(i+1), input)
			}
			b.StopTimer()
			if got := svc.Uncommitted(); got != 0 {
				b.Fatalf("%d uncommitted versions survived the aborts", got)
			}
			b.ReportMetric(float64(inAbort.Nanoseconds())/float64(b.N), "ns/abort")
		})
	}
}

// TestRollbackDepthFlat is the acceptance criterion behind
// BenchmarkRollbackDepth: the netfs abort cost at a 100k-file store
// stays within 2x of the 1k-file store. Measured as best-of-rounds
// totals over many speculate/abort cycles so scheduler noise and GC
// pauses cannot fake a regression.
func TestRollbackDepthFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	input := rollbackUtimensInput()
	cycles := 2000
	if raceEnabled {
		cycles = 500
	}
	measure := func(files int) time.Duration {
		svc := rollbackDepthFS(files)
		var epoch mvstore.Epoch
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 5; round++ {
			var total time.Duration
			for i := 0; i < cycles; i++ {
				epoch++
				total += rollbackCycle(t, svc, epoch, input)
			}
			if total < best {
				best = total
			}
		}
		if got := svc.Uncommitted(); got != 0 {
			t.Fatalf("%d uncommitted versions survived the aborts", got)
		}
		return best
	}
	small := measure(1_000)
	large := measure(100_000)
	ratio := float64(large) / float64(small)
	t.Logf("abort cost: 1k files %v, 100k files %v (%.2fx)", small, large, ratio)
	if ratio > 2 {
		t.Fatalf("netfs abort cost grew %.2fx from 1k to 100k files (want <= 2x): O(touched-keys) abort regressed", ratio)
	}
}

// BenchmarkBTree benchmarks the storage engine in isolation (context
// for the absolute Kcps numbers of the system benchmarks).
func BenchmarkBTree(b *testing.B) {
	b.Run("get", func(b *testing.B) {
		st := kvstore.New()
		st.Preload(1_000_000)
		input := kvstore.EncodeKey(12345)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Execute(kvstore.CmdRead, input)
		}
	})
	b.Run("update", func(b *testing.B) {
		st := kvstore.New()
		st.Preload(1_000_000)
		input := kvstore.EncodeKeyValue(54321, []byte("12345678"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Execute(kvstore.CmdUpdate, input)
		}
	})
	b.Run("insert-delete", func(b *testing.B) {
		st := kvstore.New()
		st.Preload(1_000_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := uint64(2_000_000 + i%100_000)
			st.Execute(kvstore.CmdInsert, kvstore.EncodeKeyValue(key, []byte("12345678")))
			st.Execute(kvstore.CmdDelete, kvstore.EncodeKey(key))
		}
	})
}
